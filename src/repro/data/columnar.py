"""Columnar claim encoding: the array backbone of the vectorized fast paths.

The dict-based :class:`~repro.data.model.TruthDiscoveryDataset` is the
reference representation — easy to mutate, easy to read, and exactly the shape
the paper's per-object formulas are written in. But every EM round over it
costs one Python-level loop per claim per candidate, which dominates runtime
long before the datasets reach the paper's Fig-12/Fig-13 scales.

:class:`ColumnarClaims` integer-encodes the whole dataset once:

* **objects** ``o`` -> ``oid`` (dense, in first-seen order);
* **claimants** (sources and ``("worker", w)`` pairs) -> ``cid``;
* **candidate values**: each object's ``Vo`` occupies a contiguous run of
  global *slots*; ``value_offsets[oid]:value_offsets[oid+1]`` is the CSR
  slice of object ``oid``, so any per-candidate quantity lives in one flat
  ``(n_slots,)`` array;
* **claims** (records followed by answers, grouped by object) become four
  parallel arrays ``claim_obj / claim_claimant / claim_pos / claim_slot``
  with their own CSR ``claim_offsets`` per object (``claim_is_answer``
  distinguishes worker answers from source records).

On top of the encoding the class offers the segment primitives the vectorized
algorithms share — per-object normalize / argmax / log-softmax via
``np.add.reduceat`` and friends — plus two lazily built companions:

* :class:`PairExpansion`, the claim x candidate cross-join used by the
  confusion-matrix EM steps (Dawid-Skene, ZenCrowd, LFC) and by every
  algorithm whose E-step evaluates a likelihood row per claim (TDH, LCA,
  DOCS);
* :class:`ColumnarHierarchy`, the integer-encoded view of the value
  hierarchy: per-value and per-slot ancestor/descendant CSR index arrays,
  depths, Euler-tour intervals for O(1) vectorized ancestor tests, and the
  depth-1 "domain" ancestor used by DOCS. This is what lets the
  hierarchy-aware algorithms (TDH, ASUMS) run without touching the Python
  :class:`~repro.hierarchy.tree.Hierarchy` object inside EM loops.

The encoding is built once and cached on the dataset
(:meth:`TruthDiscoveryDataset.columnar`). Every encoding is stamped with the
dataset's mutation :attr:`version`; ``add_record`` / ``add_answer`` bump the
version, so a later ``dataset.columnar()`` call transparently catches up, and
a *held* stale encoding can be detected with
:meth:`ColumnarClaims.assert_fresh` (raises :class:`StaleEncodingError`).

Catching up is **incremental** whenever possible: the dataset keeps an append
log of mutations, and :class:`ColumnarAppender` diffs a held encoding's
version against the dataset's, then splices only the delta — new claim rows,
new candidate slots, new claimant/value table entries — into fresh arrays
that share every unchanged buffer with the predecessor encoding. A
crowdsourcing round therefore costs O(delta) NumPy splices instead of the
O(claims) Python rebuild; see :meth:`ColumnarAppender.refresh` for the exact
fallback rules (in-place claim overwrites force a cold rebuild).
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .model import ObjectId, TruthDiscoveryDataset

ClaimantKey = Hashable

#: Claims-table size above which ``use_columnar="auto"`` switches to the
#: vectorized path. Below it the dict loops win on constant factors and the
#: reference implementation stays exercised by the ordinary test suite.
AUTO_MIN_CLAIMS = 2048


class StaleEncodingError(RuntimeError):
    """A held :class:`ColumnarClaims` no longer matches its dataset.

    Raised by :meth:`ColumnarClaims.assert_fresh` when ``add_record`` /
    ``add_answer`` mutated the dataset after the encoding was built. Callers
    should drop the stale object and re-fetch ``dataset.columnar()`` (which
    rebuilds automatically).
    """


def resolve_engine(
    use_columnar: Union[bool, str], dataset: "TruthDiscoveryDataset"
) -> bool:
    """Decide whether to take the columnar fast path.

    ``use_columnar`` accepts ``True`` / ``False``, the strings ``"columnar"``
    / ``"reference"`` (the experiment CLI's ``--engine`` values), or
    ``"auto"`` — columnar once the claim table reaches
    :data:`AUTO_MIN_CLAIMS` rows.
    """
    if use_columnar is True or use_columnar == "columnar":
        return True
    if use_columnar is False or use_columnar == "reference":
        return False
    if use_columnar == "auto":
        return dataset.num_records + dataset.num_answers >= AUTO_MIN_CLAIMS
    raise ValueError(
        "use_columnar must be True, False, 'auto', 'columnar' or 'reference';"
        f" got {use_columnar!r}"
    )


def csr_expand(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated index ranges ``starts[i] : starts[i] + counts[i]``.

    The gather pattern behind every CSR cross-join here (claim x candidate,
    claim x candidate-ancestor): ``out[k]`` walks each segment ``i`` in order,
    offset by that segment's start.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within


class ClaimantObjectsIndex:
    """Claimant -> objects CSR: the inverse of the claim table's object axis.

    ``objects[offsets[cid]:offsets[cid + 1]]`` lists the object ids claimed
    by claimant ``cid``, ascending (the functional setting guarantees one
    claim per ``(object, claimant)`` pair, so the lists are duplicate-free).
    This is the adjacency the dirty-object *frontier* walks: an appended
    answer to object ``o`` can move the trust of every claimant of ``o``,
    which in turn can move the posteriors of every other object those
    claimants touched — exactly one CSR gather away.

    Built once per encoding (:attr:`ColumnarClaims.claimant_objects`) and
    spliced forward by :meth:`ColumnarAppender.extend` so crowdsourcing
    rounds never pay the O(claims log claims) group-by again.
    """

    def __init__(self, offsets: np.ndarray, objects: np.ndarray) -> None:
        self.offsets = offsets
        self.objects = objects

    @classmethod
    def build(cls, col: "ColumnarClaims") -> "ClaimantObjectsIndex":
        order = np.argsort(col.claim_claimant, kind="stable")
        counts = np.bincount(col.claim_claimant, minlength=col.n_claimants)
        offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        # Claims are grouped by ascending object, so the stable sort leaves
        # each claimant's objects ascending — the invariant `spliced` keeps.
        return cls(offsets, col.claim_obj[order])

    @classmethod
    def spliced(
        cls,
        old: "ClaimantObjectsIndex",
        n_claimants: int,
        n_objects: int,
        delta_cids: np.ndarray,
        delta_oids: np.ndarray,
        claimant_remap: Optional[np.ndarray] = None,
    ) -> "ClaimantObjectsIndex":
        """The index of the extended encoding, array-equal to a cold
        :meth:`build`: existing groups are relocated with O(claims) C-level
        copies (appended claimants become empty tail groups first, then the
        renumbering permutes whole groups), and the delta entries are merged
        into their groups at the sorted position via one ``np.insert``.
        """
        counts = np.diff(old.offsets)
        n_old_groups = len(counts)
        pad = n_claimants - n_old_groups
        counts_full = np.concatenate([counts, np.zeros(pad, dtype=np.int64)])
        objects = old.objects
        if claimant_remap is not None:
            starts_full = np.concatenate(
                [old.offsets[:-1], np.full(pad, old.offsets[-1], dtype=np.int64)]
            )
            inv = np.empty_like(claimant_remap)
            inv[claimant_remap] = np.arange(len(claimant_remap), dtype=np.int64)
            counts_full = counts_full[inv]
            objects = objects[csr_expand(starts_full[inv], counts_full)]
        # Within-group ascending order makes (claimant, object) keys globally
        # sorted, so every delta entry's insertion point is one searchsorted.
        okey = (
            np.repeat(np.arange(n_claimants, dtype=np.int64), counts_full) * n_objects
            + objects
        )
        dorder = np.lexsort((delta_oids, delta_cids))
        d_cid = np.asarray(delta_cids, dtype=np.int64)[dorder]
        d_oid = np.asarray(delta_oids, dtype=np.int64)[dorder]
        new_objects = np.insert(
            objects, np.searchsorted(okey, d_cid * n_objects + d_oid), d_oid
        )
        new_counts = counts_full + np.bincount(d_cid, minlength=n_claimants)
        new_offsets = np.concatenate(([0], np.cumsum(new_counts))).astype(np.int64)
        return cls(new_offsets, new_objects)

    def objects_of(self, cids: np.ndarray) -> np.ndarray:
        """Concatenated object lists of ``cids`` (duplicates across claimants
        possible; callers np.unique as needed)."""
        counts = np.diff(self.offsets)
        return self.objects[csr_expand(self.offsets[cids], counts[cids])]


#: Observable lifecycle counters for the pair expansion: how many times the
#: O(pairs log pairs) cold ``np.unique`` factorization ran vs the O(delta)
#: splice paths. Tests and benchmarks read these instead of monkeypatching
#: ``PairExpansion.__init__``; any cold rebuild on an append path shows up
#: here instead of silently costing a factorization.
PAIR_EXPANSION_STATS = {"cold_builds": 0, "spliced": 0, "spliced_slot_growth": 0}


def _resolve_pair_keys(lookup, table: np.ndarray, keys: np.ndarray):
    """Appended confusion keys -> dense ids (existing, or appended to the
    table), updating the sorted ``(keys, ids)`` lookup; O(delta log cells +
    cells), no per-pair work at all."""
    sorted_keys, sorted_ids = lookup
    uniq, inv = np.unique(keys, return_inverse=True)
    if len(sorted_keys):
        at = np.searchsorted(sorted_keys, uniq)
        hit = at < len(sorted_keys)
        hit[hit] = sorted_keys[at[hit]] == uniq[hit]
    else:
        at = np.zeros(len(uniq), dtype=np.intp)
        hit = np.zeros(len(uniq), dtype=bool)
    fresh = uniq[~hit]
    ids_of_uniq = np.empty(len(uniq), dtype=np.intp)
    ids_of_uniq[hit] = sorted_ids[at[hit]]
    ids_of_uniq[~hit] = len(table) + np.arange(len(fresh), dtype=np.intp)
    if len(fresh):
        pos = np.searchsorted(sorted_keys, fresh)
        lookup = (
            np.insert(sorted_keys, pos, fresh),
            np.insert(sorted_ids, pos, ids_of_uniq[~hit]),
        )
        table = np.concatenate([table, fresh])
    return table, ids_of_uniq[inv], lookup


class PairExpansion:
    """The claim x candidate cross-join used by confusion-matrix EM steps.

    Row ``p`` pairs claim ``pair_claim[p]`` with candidate slot
    ``pair_slot[p]`` of the claimed object, ordered by object, then claim,
    then candidate position — the exact iteration order of the reference
    loops, so ``np.bincount`` accumulates partial sums in the same sequence.

    ``cell_index`` / ``total_index`` give each row a dense id for its
    Dawid-Skene confusion cell ``(claimant, truth value, claimed value)`` and
    marginal ``(claimant, truth value)``; both are iteration-invariant, so the
    (relatively expensive) ``np.unique`` runs once per encoding — and on
    append-only mutations not even that: :meth:`spliced` carries a built
    expansion across a :class:`ColumnarAppender` extension by splicing only
    the appended claims' pair rows.

    Cell ids are **append-stable**, not sorted: ``cells[i]`` is the key of
    the cell that was *i-th to be factorized*, and the keys themselves use
    each claimant's :attr:`claimant_stable` id (the id it had when first
    factorized), so neither a claimant renumbering nor a later append ever
    moves an existing id. Consumers only require the ids to be dense and
    consistent — ``np.bincount`` groups and within-group accumulation order
    are relabeling-invariant, so EM results are bitwise-identical whichever
    of the cold or spliced id assignments is live. (On a cold build the
    stable ids coincide with the claimant ids and the table happens to be
    key-sorted — ``np.unique`` order.)
    """

    def __init__(self, col: "ColumnarClaims") -> None:
        PAIR_EXPANSION_STATS["cold_builds"] += 1
        sizes_per_claim = col.sizes[col.claim_obj]
        self.pair_claim = np.repeat(
            np.arange(len(col.claim_obj), dtype=np.int64), sizes_per_claim
        )
        # pair_slot[p] = value_offsets[claim_obj[j]] + (rank of p within claim j)
        self.pair_slot = csr_expand(
            col.value_offsets[col.claim_obj], sizes_per_claim
        )
        #: ``|Vo|`` of the object behind each pair (Laplace denominators).
        self.pair_size = sizes_per_claim[self.pair_claim].astype(np.float64)
        #: True where the pair's candidate is the claimed value itself.
        self.pair_is_claimed = self.pair_slot == col.claim_slot[self.pair_claim]

        n_values = max(len(col.values), 1)
        claimant = col.claim_claimant[self.pair_claim].astype(np.int64)
        truth_vid = col.slot_vid[self.pair_slot].astype(np.int64)
        claimed_vid = col.claim_vid[self.pair_claim].astype(np.int64)
        total_key = claimant * n_values + truth_vid
        cell_key = total_key * n_values + claimed_vid
        self.cells, self.cell_index = np.unique(cell_key, return_inverse=True)
        self.totals, self.total_index = np.unique(total_key, return_inverse=True)
        self.n_cells = len(self.cells)
        self.n_totals = len(self.totals)

        #: Current claimant id -> the id its keys were first factorized
        #: under; identity here, composed across renumberings by `spliced`.
        self.claimant_stable = np.arange(col.n_claimants, dtype=np.int64)
        self.n_stable = col.n_claimants
        #: Same construction on the value axis: current value id -> the id
        #: its keys were first factorized under, and the key radix. A value
        #: re-rank or a brand-new value (slot growth) composes these in
        #: :meth:`spliced_slot_growth` so existing cell keys never move.
        self.value_stable = np.arange(len(col.values), dtype=np.int64)
        self.n_value_stable = len(col.values)
        self.value_base = n_values
        # Sorted (keys, ids) views for O(log) key resolution in `spliced`;
        # a cold table is already key-sorted, so these share its arrays.
        self._cell_lookup = (self.cells, np.arange(self.n_cells, dtype=np.intp))
        self._total_lookup = (self.totals, np.arange(self.n_totals, dtype=np.intp))

    @classmethod
    def spliced(
        cls,
        old: "PairExpansion",
        col: "ColumnarClaims",
        inserted_claims: np.ndarray,
        claimant_remap: Optional[np.ndarray] = None,
    ) -> "PairExpansion":
        """An expansion for ``col``, equivalent to ``PairExpansion(col)`` —
        identical pair layout, identical cell partition up to the id
        relabeling described in the class docstring — built by splicing
        ``old`` instead of re-factorizing every pair.

        ``old`` must be the expansion of the predecessor encoding and
        ``inserted_claims`` the (sorted) claim rows of ``col`` that did not
        exist in it. The caller (:meth:`ColumnarAppender.extend`) guarantees
        the preconditions: the slot layout and value ids are unchanged, so
        every *old* pair row — slots, claimed flags, confusion cell ids —
        is still valid verbatim and is relocated with O(delta) *slice*
        copies; only the appended claims' pair rows are computed, resolved
        against the sorted key lookup, with genuinely new cells appended at
        the end of the table. No O(pairs) gather or sort anywhere.

        ``claimant_remap`` covers the one id move an append *can* cause: an
        insert pulling a claimant's first occurrence ahead re-ranks the
        claimant table (routine in crowd rounds — a known worker answering
        an earlier object). Keys are built from :attr:`claimant_stable`
        ids, which this method composes with the renumbering — so a re-rank
        costs O(claimants) and touches no key, no table and no pair.
        """
        PAIR_EXPANSION_STATS["spliced"] += 1
        new = cls.__new__(cls)
        sizes_per_claim = col.sizes[col.claim_obj]
        offsets = np.concatenate(([0], np.cumsum(sizes_per_claim))).astype(np.int64)
        n_old = len(old.pair_claim)
        ins_sizes = sizes_per_claim[inserted_claims]

        # The appended claims form O(delta) contiguous pair runs, so every
        # old array is relocated as one ``np.concatenate`` over alternating
        # old-segment views and inserted chunks (memcpy speed, one C call
        # per array) — per-element fancy scatters over the whole pair table
        # would cost more than the np.unique this method exists to avoid.
        cum = np.cumsum(ins_sizes)
        seg = np.concatenate(
            ([0], offsets[inserted_claims] - cum + ins_sizes, [n_old])
        ).tolist()
        ib = np.concatenate(([0], cum)).tolist()
        slices = []
        for k in range(len(inserted_claims)):
            slices.append((seg[k], seg[k + 1], False))
            slices.append((ib[k], ib[k + 1], True))
        slices.append((seg[-2], seg[-1], False))

        def cat(old_arr: np.ndarray, ins_vals: np.ndarray) -> np.ndarray:
            return np.concatenate(
                [(ins_vals if is_ins else old_arr)[a:b] for a, b, is_ins in slices]
            )

        # Inserted rows' values, all derivable without the spliced arrays.
        ins_claim_of_row = np.repeat(inserted_claims, ins_sizes)
        ins_slot = csr_expand(col.value_offsets[col.claim_obj[inserted_claims]], ins_sizes)
        ins_size_vals = np.repeat(ins_sizes.astype(np.float64), ins_sizes)
        ins_claimed = ins_slot == col.claim_slot[ins_claim_of_row]

        # --- stable claimant ids: extend with the appended claimants, then
        # compose the renumbering (stable[new id] = stable the claimant
        # already had) so every existing key — hence every existing cell id
        # — survives the re-rank untouched.
        n_added = col.n_claimants - len(old.claimant_stable)
        if n_added:
            provisional = np.concatenate(
                [
                    old.claimant_stable,
                    old.n_stable + np.arange(n_added, dtype=np.int64),
                ]
            )
        else:
            provisional = old.claimant_stable
        if claimant_remap is not None:
            stable = np.empty_like(provisional)
            stable[claimant_remap] = provisional
        else:
            stable = provisional
        new.claimant_stable = stable
        new.n_stable = old.n_stable + n_added

        # Confusion keys for the appended pairs only, under stable ids. No
        # slot change means no new values and no value re-rank, but a
        # *previous* growth splice may have left the keys under non-identity
        # stable value ids / a wider radix — carry both forward.
        new.value_stable = old.value_stable
        new.n_value_stable = old.n_value_stable
        new.value_base = old.value_base
        vstable = old.value_stable
        base = old.value_base
        total_key_ins = (
            stable[col.claim_claimant[ins_claim_of_row]] * base
            + vstable[col.slot_vid[ins_slot]]
        )
        cell_key_ins = total_key_ins * base + vstable[col.claim_vid[ins_claim_of_row]]

        new.cells, cell_ins_ids, new._cell_lookup = _resolve_pair_keys(
            old._cell_lookup, old.cells, cell_key_ins
        )
        new.totals, total_ins_ids, new._total_lookup = _resolve_pair_keys(
            old._total_lookup, old.totals, total_key_ins
        )
        new.n_cells = len(new.cells)
        new.n_totals = len(new.totals)

        new.pair_claim = np.repeat(
            np.arange(len(col.claim_obj), dtype=np.int64), sizes_per_claim
        )
        new.pair_slot = cat(old.pair_slot, ins_slot)
        # |Vo| never changes under the slot-layout precondition, so the old
        # per-pair sizes are verbatim valid.
        new.pair_size = cat(old.pair_size, ins_size_vals)
        new.pair_is_claimed = cat(old.pair_is_claimed, ins_claimed)
        new.cell_index = cat(old.cell_index, cell_ins_ids)
        new.total_index = cat(old.total_index, total_ins_ids)
        return new

    @classmethod
    def spliced_slot_growth(
        cls,
        old: "PairExpansion",
        col: "ColumnarClaims",
        prev_col: "ColumnarClaims",
        inserted_claims: np.ndarray,
        claimant_remap: Optional[np.ndarray] = None,
        value_remap: Optional[np.ndarray] = None,
    ) -> "PairExpansion":
        """The splice for extensions that *grow the slot layout* — appended
        objects or brand-new candidate values, the case :meth:`spliced`'s
        precondition excludes and the appender used to rebuild cold.

        Growth shifts every later pair's slot id and re-sizes every grown
        claim's pair run, so the cheap layout arrays (``pair_slot``,
        ``pair_size``, ...) are recomputed wholesale with the same O(pairs)
        vectorized expressions as a cold build. What the splice preserves is
        the expensive part: the confusion-cell *factorization*. Candidates
        are append-only per object and objects append at the tail, so an old
        claim's old pair run maps onto the head of its new run with the same
        (truth candidate, claimed value) at every position — the old
        ``cell_index`` / ``total_index`` entries are still exactly right and
        are relocated with one scatter. Only the genuinely fresh rows (tail
        candidates of grown objects' claims, plus the inserted claims' full
        runs) pay key resolution against the sorted lookup.

        ``value_remap`` composes a value re-rank (an insert pulling a
        value's first occurrence forward) into :attr:`value_stable`, exactly
        as ``claimant_remap`` does for claimants. When the stable value ids
        outgrow the key radix, the O(cells) key tables are re-encoded under
        a wider base — order-preserving, so the sorted lookups stay sorted.
        """
        PAIR_EXPANSION_STATS["spliced_slot_growth"] += 1
        new = cls.__new__(cls)

        # --- stable claimant ids, exactly as in `spliced`.
        n_added = col.n_claimants - len(old.claimant_stable)
        if n_added:
            provisional = np.concatenate(
                [old.claimant_stable, old.n_stable + np.arange(n_added, dtype=np.int64)]
            )
        else:
            provisional = old.claimant_stable
        if claimant_remap is not None:
            stable = np.empty_like(provisional)
            stable[claimant_remap] = provisional
        else:
            stable = provisional
        new.claimant_stable = stable
        new.n_stable = old.n_stable + n_added

        # --- stable value ids: the same construction on the value axis.
        n_vadded = len(col.values) - len(old.value_stable)
        if n_vadded:
            vprov = np.concatenate(
                [old.value_stable, old.n_value_stable + np.arange(n_vadded, dtype=np.int64)]
            )
        else:
            vprov = old.value_stable
        if value_remap is not None:
            vstable = np.empty_like(vprov)
            vstable[value_remap] = vprov
        else:
            vstable = vprov
        new.value_stable = vstable
        new.n_value_stable = old.n_value_stable + n_vadded

        # --- widen the key radix (with headroom) when stable value ids
        # outgrow it; re-encoding keys under a larger base preserves the
        # (claimant, truth, claimed) lexicographic order, so the sorted
        # lookups stay sorted and old ids stay put.
        base = old.value_base
        cells, totals = old.cells, old.totals
        cell_lookup, total_lookup = old._cell_lookup, old._total_lookup
        if new.n_value_stable > base:
            wider = max(2 * base, new.n_value_stable)

            def rekey_cells(keys: np.ndarray) -> np.ndarray:
                c, rem = np.divmod(keys, base * base)
                t, v = np.divmod(rem, base)
                return (c * wider + t) * wider + v

            def rekey_totals(keys: np.ndarray) -> np.ndarray:
                c, t = np.divmod(keys, base)
                return c * wider + t

            cells = rekey_cells(cells)
            totals = rekey_totals(totals)
            cell_lookup = (rekey_cells(cell_lookup[0]), cell_lookup[1])
            total_lookup = (rekey_totals(total_lookup[0]), total_lookup[1])
            base = wider
        new.value_base = base

        # --- layout arrays, recomputed wholesale (the cheap half of a cold
        # build; the growth moved every later slot id, so per-row adjustment
        # would cost the same O(pairs) anyway).
        sizes_per_claim = col.sizes[col.claim_obj]
        n_claims_new = len(col.claim_obj)
        new.pair_claim = np.repeat(
            np.arange(n_claims_new, dtype=np.int64), sizes_per_claim
        )
        new.pair_slot = csr_expand(col.value_offsets[col.claim_obj], sizes_per_claim)
        new.pair_size = sizes_per_claim[new.pair_claim].astype(np.float64)
        new.pair_is_claimed = new.pair_slot == col.claim_slot[new.pair_claim]

        # --- relocate the old cell/total ids: old claim k is the k-th kept
        # claim of the new table (inserts preserve relative order), and its
        # old pair run lands on the first |Vo_old| rows of its new run.
        new_offsets = np.concatenate(([0], np.cumsum(sizes_per_claim))).astype(np.int64)
        keep = np.ones(n_claims_new, dtype=bool)
        keep[inserted_claims] = False
        old_sizes = prev_col.sizes[prev_col.claim_obj]
        dst = csr_expand(new_offsets[:-1][keep], old_sizes)
        n_pairs_new = int(new_offsets[-1])
        cell_index = np.empty(n_pairs_new, dtype=old.cell_index.dtype)
        total_index = np.empty(n_pairs_new, dtype=old.total_index.dtype)
        cell_index[dst] = old.cell_index
        total_index[dst] = old.total_index
        fresh = np.ones(n_pairs_new, dtype=bool)
        fresh[dst] = False
        fresh_rows = np.flatnonzero(fresh)

        # --- only the fresh rows pay key resolution.
        f_claim = new.pair_claim[fresh_rows]
        total_key_f = (
            stable[col.claim_claimant[f_claim]] * base
            + vstable[col.slot_vid[new.pair_slot[fresh_rows]]]
        )
        cell_key_f = total_key_f * base + vstable[col.claim_vid[f_claim]]
        new.cells, cell_f_ids, new._cell_lookup = _resolve_pair_keys(
            cell_lookup, cells, cell_key_f
        )
        new.totals, total_f_ids, new._total_lookup = _resolve_pair_keys(
            total_lookup, totals, total_key_f
        )
        new.n_cells = len(new.cells)
        new.n_totals = len(new.totals)
        cell_index[fresh_rows] = cell_f_ids
        total_index[fresh_rows] = total_f_ids
        new.cell_index = cell_index
        new.total_index = total_index
        return new


class SlotPairExpansion:
    """The candidate x candidate cross-join: every object's full ``|Vo|^2``.

    Row-major per object — pair ``p`` of object ``o`` with ``n = |Vo|``
    candidates is ``(u, v) = (p // n, p % n)`` relative to the object's slot
    run, matching the ``(rows = claimed value u, columns = truth v)``
    convention of :class:`~repro.inference._structures.ObjectStructure`. This
    is what lets the EAI assigner evaluate a whole likelihood matrix as one
    ``offsets[oid]:offsets[oid+1]`` slice reshaped to ``(n, n)``, with no
    per-object Python structure building.
    """

    def __init__(self, col: "ColumnarClaims") -> None:
        squares = col.sizes * col.sizes
        self.offsets = np.concatenate(
            ([0], np.cumsum(squares))
        ).astype(np.int64)
        total = int(self.offsets[-1])
        self.pair_obj = np.repeat(
            np.arange(col.n_objects, dtype=np.int64), squares
        )
        within = np.arange(total, dtype=np.int64) - np.repeat(
            self.offsets[:-1], squares
        )
        n_of = col.sizes[self.pair_obj]
        starts = col.value_offsets[self.pair_obj]
        #: Global slot of the claimed value ``u`` / hypothesised truth ``v``.
        self.u_slot = starts + within // n_of
        self.v_slot = starts + within % n_of


class SegmentOps:
    """Per-object segment primitives over a candidate-slot CSR layout.

    Shared by :class:`ColumnarClaims` (the whole dataset) and
    :class:`~repro.data.sharding.ColumnarShard` (a contiguous object range):
    any class exposing ``value_offsets`` / ``sizes`` / ``slot_obj`` (plus
    ``claim_slot`` / ``claim_claimant`` for the claim-level helper) in local
    coordinates gets the same normalize / argmax / softmax / weighted-vote
    reductions, so shard kernels run the exact array operations of the
    unsharded path on their slice.
    """

    value_offsets: np.ndarray
    sizes: np.ndarray
    slot_obj: np.ndarray
    claim_slot: np.ndarray
    claim_claimant: np.ndarray

    @property
    def n_objects(self) -> int:
        return len(self.value_offsets) - 1

    @property
    def n_slots(self) -> int:
        return int(self.value_offsets[-1])

    def segment_sum(self, flat: np.ndarray) -> np.ndarray:
        """Per-object sum of a ``(n_slots,)`` array -> ``(n_objects,)``."""
        if self.n_objects == 0:
            return np.zeros(0, dtype=flat.dtype)
        return np.add.reduceat(flat, self.value_offsets[:-1])

    def segment_normalize(self, flat: np.ndarray) -> np.ndarray:
        """Normalize per object; all-zero (or negative-total) segments become
        uniform, matching the reference algorithms' fallback."""
        totals = self.segment_sum(flat)
        safe = np.where(totals > 0, totals, 1.0)
        out = flat / safe[self.slot_obj]
        bad = totals <= 0
        if np.any(bad):
            uniform = 1.0 / self.sizes.astype(np.float64)
            out = np.where(bad[self.slot_obj], uniform[self.slot_obj], out)
        return out

    def segment_argmax_slot(self, flat: np.ndarray) -> np.ndarray:
        """Per-object argmax -> global slot, first-max tie-break like
        ``np.argmax`` over each segment."""
        if self.n_objects == 0:
            return np.zeros(0, dtype=np.int64)
        seg_max = np.maximum.reduceat(flat, self.value_offsets[:-1])
        slot_ids = np.arange(self.n_slots, dtype=np.int64)
        candidates = np.where(flat == seg_max[self.slot_obj], slot_ids, self.n_slots)
        return np.minimum.reduceat(candidates, self.value_offsets[:-1])

    def segment_softmax(self, log_flat: np.ndarray) -> np.ndarray:
        """Per-object ``exp(x - max) / sum`` over a log-score array."""
        if self.n_objects == 0:
            return np.zeros(0, dtype=np.float64)
        seg_max = np.maximum.reduceat(log_flat, self.value_offsets[:-1])
        shifted = np.exp(log_flat - seg_max[self.slot_obj])
        totals = np.add.reduceat(shifted, self.value_offsets[:-1])
        return shifted / totals[self.slot_obj]

    def weighted_counts(self, claimant_weights: np.ndarray) -> np.ndarray:
        """Per-slot sum of claimant weights -> ``(n_slots,)`` — the weighted
        vote; ``claimant_weights`` is indexed by (global) claimant id."""
        return np.bincount(
            self.claim_slot,
            weights=claimant_weights[self.claim_claimant],
            minlength=self.n_slots,
        )


class FrontierView(SegmentOps):
    """Local-coordinate view of an arbitrary (sorted) object subset.

    Where :class:`~repro.data.sharding.ColumnarShard` slices a *contiguous*
    object range, a frontier is scattered across the corpus — so this view
    gathers the subset's slot and claim rows into dense local arrays and
    remembers the global indices (:attr:`slot_ids` / :attr:`claim_ids`) to
    scatter results back. It exposes the same :class:`SegmentOps` surface
    plus the pair-level arrays the EM kernels consume, which lets the
    incremental fits run the *unmodified* shard kernels
    (``_tdh_estep_kernel``, ``_confusion_estep_kernel``,
    ``_zencrowd_estep_kernel``) over just the frontier: ``slot_lo``/
    ``slot_hi`` span the whole local array, ``claim_claimant`` stays global
    (trust/reliability vectors are indexed by global claimant id), and
    everything segment-shaped is local.

    The per-claim candidate cross-join is rebuilt locally in O(frontier
    pairs); the confusion-cell ids (:attr:`cell_index` / :attr:`total_index`)
    are *gathered* from the full :class:`PairExpansion` via :attr:`pair_rows`
    on first use, so they share the global tables' id space — required for
    patching the previous round's cell reductions in place.
    """

    def __init__(self, col: "ColumnarClaims", obj_ids: np.ndarray) -> None:
        self.col = col
        o = np.asarray(obj_ids, dtype=np.int64)
        self.obj_ids = o
        self.sizes = col.sizes[o]
        self.value_offsets = np.concatenate(([0], np.cumsum(self.sizes))).astype(
            np.int64
        )
        n_local = len(o)
        self.slot_obj = np.repeat(np.arange(n_local, dtype=np.int64), self.sizes)
        #: Local slot -> global slot (the scatter-back index).
        self.slot_ids = csr_expand(col.value_offsets[o], self.sizes)

        claim_counts = np.diff(col.claim_offsets)[o]
        #: Local claim -> global claim-table row.
        self.claim_ids = csr_expand(col.claim_offsets[o], claim_counts)
        self.claim_obj = np.repeat(np.arange(n_local, dtype=np.int64), claim_counts)
        self.claim_claimant = col.claim_claimant[self.claim_ids]
        self.claim_is_answer = col.claim_is_answer[self.claim_ids]
        self.claim_slot = (
            self.value_offsets[self.claim_obj] + col.claim_pos[self.claim_ids]
        )

        sizes_per_claim = self.sizes[self.claim_obj]
        self.pair_claim = np.repeat(
            np.arange(len(self.claim_ids), dtype=np.int64), sizes_per_claim
        )
        self.pair_slot = csr_expand(self.value_offsets[self.claim_obj], sizes_per_claim)
        self.pair_size = sizes_per_claim[self.pair_claim].astype(np.float64)
        self.pair_is_claimed = self.pair_slot == self.claim_slot[self.pair_claim]

        self.slot_lo = 0
        self.slot_hi = int(self.value_offsets[-1])
        self._pair_rows: Optional[np.ndarray] = None
        self._cell_index: Optional[np.ndarray] = None
        self._total_index: Optional[np.ndarray] = None

    @property
    def n_claims(self) -> int:
        return len(self.claim_ids)

    @property
    def pair_rows(self) -> np.ndarray:
        """Global :class:`PairExpansion` rows of this view's pairs (pairs are
        laid out claim-major in both, so the rows are each local claim's
        contiguous global run)."""
        if self._pair_rows is None:
            col = self.col
            global_sizes = col.sizes[col.claim_obj]
            pair_offsets = np.concatenate(([0], np.cumsum(global_sizes))).astype(
                np.int64
            )
            self._pair_rows = csr_expand(
                pair_offsets[self.claim_ids], global_sizes[self.claim_ids]
            )
        return self._pair_rows

    @property
    def cell_index(self) -> np.ndarray:
        """Global confusion-cell id per local pair (forces ``col.pairs``)."""
        if self._cell_index is None:
            self._cell_index = self.col.pairs.cell_index[self.pair_rows]
        return self._cell_index

    @property
    def total_index(self) -> np.ndarray:
        """Global confusion-marginal id per local pair."""
        if self._total_index is None:
            self._total_index = self.col.pairs.total_index[self.pair_rows]
        return self._total_index


class ColumnarClaims(SegmentOps):
    """Flat integer-array view of a :class:`TruthDiscoveryDataset`.

    Attributes
    ----------
    objects / claimants / values:
        Decoding tables: dense id -> original object id, claimant key
        (source, or ``("worker", w)``), hierarchy value.
    value_offsets:
        ``(n_objects + 1,)`` CSR offsets into the slot arrays; object ``oid``
        owns slots ``value_offsets[oid]:value_offsets[oid + 1]``, one per
        candidate in ``Vo`` order.
    slot_vid / slot_obj:
        Per-slot global value id and owning object id.
    claim_obj / claim_claimant / claim_pos / claim_slot:
        The claim table (records then answers, grouped by object).
        ``claim_pos`` is the candidate position within the object,
        ``claim_slot`` the global slot.
    claim_offsets:
        ``(n_objects + 1,)`` CSR offsets into the claim table per object.
    claim_is_answer:
        ``(n_claims,)`` bool — ``True`` for worker answers, ``False`` for
        source records (TDH learns separate trust priors per claim kind).
    claimant_is_worker:
        ``(n_claimants,)`` bool — ``True`` for ``("worker", w)`` claimants.
    version:
        The dataset's mutation counter at build time; see
        :meth:`assert_fresh`.
    """

    def __init__(self, dataset: "TruthDiscoveryDataset") -> None:
        self.objects: List["ObjectId"] = list(dataset.objects)
        self.object_index: Dict["ObjectId", int] = {
            obj: i for i, obj in enumerate(self.objects)
        }
        self.version = getattr(dataset, "_version", 0)
        #: Bumped by ``add_record`` only: answers never change the slot layout,
        #: so state keyed by records_version (e.g. the EAI likelihood pair
        #: arrays) survives whole crowdsourcing rounds.
        self.records_version = getattr(dataset, "_records_version", 0)

        claimant_index: Dict[ClaimantKey, int] = {}
        claimants: List[ClaimantKey] = []
        claimant_is_worker: List[bool] = []
        value_index: Dict[Hashable, int] = {}
        values: List[Hashable] = []

        value_offsets = [0]
        claim_offsets = [0]
        slot_vid: List[int] = []
        claim_obj: List[int] = []
        claim_claimant: List[int] = []
        claim_pos: List[int] = []
        claim_is_answer: List[bool] = []
        # Slot-level candidate-ancestor CSR (Go(v) within Vo, as global
        # slots), harvested from the per-object contexts while we are already
        # walking them; ColumnarHierarchy packages these.
        slot_anc_offsets = [0]
        slot_anc_slots: List[int] = []
        obj_has_hierarchy: List[bool] = []

        # Ids are handed out at first encounter, so the first-occurrence
        # positions the appender's renumbering check needs are free here.
        claimant_first: List[int] = []
        value_first: List[int] = []

        for oid, obj in enumerate(self.objects):
            ctx = dataset.context(obj)
            start = value_offsets[-1]
            for i, value in enumerate(ctx.values):
                vid = value_index.get(value)
                if vid is None:
                    vid = value_index[value] = len(values)
                    values.append(value)
                    value_first.append(len(slot_vid))
                slot_vid.append(vid)
                slot_anc_slots.extend(start + j for j in ctx.ancestor_sets[i])
                slot_anc_offsets.append(len(slot_anc_slots))
            value_offsets.append(start + ctx.size)
            obj_has_hierarchy.append(ctx.has_hierarchy)

            # Records first, answers second — the claimant order every
            # reference ``_claims_of`` helper uses.
            for source, value in dataset.records_for(obj).items():
                cid = claimant_index.get(source)
                if cid is None:
                    cid = claimant_index[source] = len(claimants)
                    claimants.append(source)
                    claimant_is_worker.append(False)
                    claimant_first.append(len(claim_obj))
                claim_obj.append(oid)
                claim_claimant.append(cid)
                claim_pos.append(ctx.index[value])
                claim_is_answer.append(False)
            for worker, value in dataset.answers_for(obj).items():
                key: ClaimantKey = ("worker", worker)
                cid = claimant_index.get(key)
                if cid is None:
                    cid = claimant_index[key] = len(claimants)
                    claimants.append(key)
                    claimant_is_worker.append(True)
                    claimant_first.append(len(claim_obj))
                claim_obj.append(oid)
                claim_claimant.append(cid)
                claim_pos.append(ctx.index[value])
                claim_is_answer.append(True)
            claim_offsets.append(len(claim_obj))

        self.claimants = claimants
        self.claimant_index = claimant_index
        self.values = values
        self.value_index = value_index

        self.value_offsets = np.asarray(value_offsets, dtype=np.int64)
        self.claim_offsets = np.asarray(claim_offsets, dtype=np.int64)
        self.slot_vid = np.asarray(slot_vid, dtype=np.int64)
        self.claim_obj = np.asarray(claim_obj, dtype=np.int64)
        self.claim_claimant = np.asarray(claim_claimant, dtype=np.int64)
        self.claim_pos = np.asarray(claim_pos, dtype=np.int64)
        self.claim_is_answer = np.asarray(claim_is_answer, dtype=bool)
        self.claimant_is_worker = np.asarray(claimant_is_worker, dtype=bool)

        self.sizes = np.diff(self.value_offsets)
        self.slot_obj = np.repeat(
            np.arange(len(self.objects), dtype=np.int64), self.sizes
        )
        self.claim_slot = self.value_offsets[self.claim_obj] + self.claim_pos
        self.claim_vid = self.slot_vid[self.claim_slot]

        self._slot_anc_offsets = np.asarray(slot_anc_offsets, dtype=np.int64)
        self._slot_anc_slots = np.asarray(slot_anc_slots, dtype=np.int64)
        self._obj_has_hierarchy = np.asarray(obj_has_hierarchy, dtype=bool)
        self._tree = dataset.hierarchy
        self._pairs: Optional[PairExpansion] = None
        self._slot_pairs: Optional[SlotPairExpansion] = None
        self._hierarchy: Optional["ColumnarHierarchy"] = None
        self._claimant_objects: Optional[ClaimantObjectsIndex] = None
        # Appender bookkeeping: first-occurrence row per claimant / first slot
        # per value (maintained across appends so id renumbering stays
        # O(delta + tables)); a reusable Euler tour.
        self._claimant_first = np.asarray(claimant_first, dtype=np.int64)
        self._value_first = np.asarray(value_first, dtype=np.int64)
        self._tour_hint: Optional[Tuple[Dict, Dict, int]] = None
        # Version counters only order one dataset's history; this token ties
        # the snapshot to the dataset (lineage) that produced it — see
        # TruthDiscoveryDataset._owns_encoding.
        self._lineage_token = getattr(dataset, "_lineage", None)

    # ------------------------------------------------------------------
    # shape accessors (n_objects / n_slots come from SegmentOps)
    # ------------------------------------------------------------------
    @property
    def n_claimants(self) -> int:
        return len(self.claimants)

    @property
    def n_claims(self) -> int:
        return len(self.claim_obj)

    @property
    def pairs(self) -> PairExpansion:
        """The claim x candidate expansion, built on first use and cached."""
        if self._pairs is None:
            self._pairs = PairExpansion(self)
        return self._pairs

    @property
    def slot_pairs(self) -> "SlotPairExpansion":
        """The candidate x candidate expansion, built on first use and cached."""
        if self._slot_pairs is None:
            self._slot_pairs = SlotPairExpansion(self)
        return self._slot_pairs

    @property
    def claimant_objects(self) -> ClaimantObjectsIndex:
        """The claimant -> objects CSR, built on first use and cached (and
        spliced forward across :class:`ColumnarAppender` extensions)."""
        if self._claimant_objects is None:
            self._claimant_objects = ClaimantObjectsIndex.build(self)
        return self._claimant_objects

    def frontier(
        self,
        dirty_oids: np.ndarray,
        hops: int = 1,
        return_claimants: bool = False,
    ) -> np.ndarray:
        """The dirty-object frontier: object ids whose posteriors an
        incremental EM must re-converge after ``dirty_oids`` changed.

        One hop unions the dirty objects with every object sharing a claimant
        with one of them — the set whose E-step inputs move when the touched
        claimants' trust moves. ``hops`` expands transitively (hop ``h``
        covers trust drift reaching ``h`` claimant links away); ``hops=0``
        returns the dirty set itself. Expansion stops early at a fixed point
        or when the frontier saturates to the whole corpus (callers treat
        saturation as "run a full fit"). Returns sorted unique object ids;
        with ``return_claimants`` also the sorted union of claimant ids
        encountered while expanding (the coverage witness
        :func:`incremental_frontier` stores for cross-round reuse).
        """
        frontier = np.unique(np.asarray(dirty_oids, dtype=np.int64))
        if len(frontier) and (frontier[0] < 0 or frontier[-1] >= self.n_objects):
            raise IndexError("dirty object id out of range")
        index = None
        claim_counts = None
        cids_all = np.zeros(0, dtype=np.int64)
        for _ in range(max(int(hops), 0)):
            if len(frontier) >= self.n_objects:
                break
            if index is None:
                index = self.claimant_objects
                claim_counts = np.diff(self.claim_offsets)
            rows = csr_expand(
                self.claim_offsets[frontier], claim_counts[frontier]
            )
            cids = np.unique(self.claim_claimant[rows])
            cids_all = np.union1d(cids_all, cids)
            grown = np.unique(
                np.concatenate([frontier, index.objects_of(cids)])
            )
            if len(grown) == len(frontier):
                break
            frontier = grown
        if return_claimants:
            return frontier, cids_all
        return frontier

    @property
    def hierarchy(self) -> "ColumnarHierarchy":
        """The integer-encoded hierarchy view, built on first use and cached.

        When this encoding was produced by :class:`ColumnarAppender`, the
        predecessor's Euler tour is reused (``_tour_hint``) so only the value
        tables are extended — the tree is not re-toured.
        """
        if self._hierarchy is None:
            self._hierarchy = ColumnarHierarchy(self, self._tree, tour=self._tour_hint)
        return self._hierarchy

    def shards(self, k: int) -> "object":
        """The :class:`~repro.data.sharding.ColumnarShards` partition of this
        encoding into ``k`` contiguous object ranges, built once per ``k`` and
        cached (encodings are immutable snapshots, so caching is safe)."""
        from .sharding import ColumnarShards

        cache = self.__dict__.setdefault("_shards_cache", {})
        shards = cache.get(k)
        if shards is None:
            shards = cache[k] = ColumnarShards(self, k)
        return shards

    def assert_fresh(self, dataset: "TruthDiscoveryDataset") -> None:
        """Raise :class:`StaleEncodingError` if ``dataset`` mutated since build.

        ``dataset.columnar()`` always returns a fresh encoding; this guard is
        for callers that *hold* a :class:`ColumnarClaims` across code that may
        call ``add_record`` / ``add_answer`` (e.g. crowdsourcing rounds).
        """
        if getattr(dataset, "_version", 0) != self.version:
            raise StaleEncodingError(
                f"columnar encoding built at dataset version {self.version} but"
                f" the dataset is now at version {getattr(dataset, '_version', 0)};"
                " re-fetch dataset.columnar()"
            )

    # ------------------------------------------------------------------
    # claim aggregations
    # ------------------------------------------------------------------
    def vote_counts(self) -> np.ndarray:
        """Claims per slot (records + answers) -> ``(n_slots,)`` floats."""
        return np.bincount(self.claim_slot, minlength=self.n_slots).astype(np.float64)

    def record_counts(self) -> np.ndarray:
        """*Source* claims per slot (answers excluded) -> ``(n_slots,)`` floats.

        The flat counterpart of :func:`repro.inference.base.claim_counts`;
        TDH's popularity terms and DOCS's domain extraction are defined over
        source claims only.
        """
        return np.bincount(
            self.claim_slot[~self.claim_is_answer], minlength=self.n_slots
        ).astype(np.float64)

    def claimant_counts(self) -> np.ndarray:
        """Claims per claimant -> ``(n_claimants,)`` ints."""
        return np.bincount(self.claim_claimant, minlength=self.n_claimants)

    def popularity_denominators(
        self, use_hierarchy: bool = True
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-slot source-claim counts and Eq. (3) popularity denominators.

        Returns ``(counts, pop2, pop3)``: source claims per candidate slot,
        the claim mass over each slot's candidate ancestors ``Go(v)``, and
        the mass over the remaining candidates. Shared by TDH's columnar
        E-step and the columnar EAI likelihood tables so the ``Pop2``/
        ``Pop3`` weighting has exactly one implementation.
        ``use_hierarchy=False`` (the ablation) zeroes the ancestor mass
        without building the hierarchy view.
        """
        counts = self.record_counts()
        if use_hierarchy:
            hier = self.hierarchy
            anc_owner = np.repeat(
                np.arange(self.n_slots, dtype=np.int64), hier.slot_gsize
            )
            pop2 = np.bincount(
                anc_owner, weights=counts[hier.slot_anc_slots], minlength=self.n_slots
            )
        else:
            pop2 = np.zeros(self.n_slots, dtype=np.float64)
        pop3 = self.segment_sum(counts)[self.slot_obj] - counts - pop2
        return counts, pop2, pop3

    def initial_confidences_flat(self) -> np.ndarray:
        """Vote-proportion EM initialisation, flat counterpart of
        :func:`repro.inference.base.initial_confidences`."""
        return self.segment_normalize(self.vote_counts())

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def to_confidences(self, flat: np.ndarray) -> Dict["ObjectId", np.ndarray]:
        """Split a ``(n_slots,)`` array back into the per-object dict shape
        that :class:`~repro.inference.base.InferenceResult` expects.

        The per-object arrays are views into ``flat`` (no copies); callers
        own ``flat`` by construction, so aliasing is safe. Sliced directly
        rather than through ``np.split``, whose per-segment ``swapaxes``
        bookkeeping dominates at tens of thousands of objects.
        """
        offsets = self.value_offsets
        return {
            obj: flat[offsets[oid] : offsets[oid + 1]]
            for oid, obj in enumerate(self.objects)
        }

    def claimant_mapping(self, values: np.ndarray) -> Dict[ClaimantKey, float]:
        """Zip a per-claimant array into a ``claimant -> value`` dict."""
        return {key: float(values[cid]) for cid, key in enumerate(self.claimants)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarClaims(objects={self.n_objects}, claimants={self.n_claimants},"
            f" slots={self.n_slots}, claims={self.n_claims})"
        )


class ColumnarHierarchy:
    """Integer-encoded view of the value hierarchy, keyed by the encoding's ids.

    Two granularities, both CSR:

    * **value level** (global, keyed by ``vid``): ``anc_offsets`` /
      ``anc_vids`` list each encoded value's proper non-root ancestors
      (nearest first) *that are themselves encoded values*;
      ``desc_offsets`` / ``desc_vids`` are the inverse (encoded proper
      descendants, no order guarantee). ``depth[vid]`` is the tree depth and
      ``top_code[vid]`` a dense id for the depth-1 ancestor (the value itself
      at depth 1) — DOCS's "domain".
    * **slot level** (per object, keyed by global slot): ``slot_anc_offsets``
      / ``slot_anc_slots`` encode ``Go(v)`` — the candidate ancestors of each
      slot's value *within the same object's* ``Vo`` — in the exact order of
      ``ObjectContext.ancestor_sets``; ``slot_desc_offsets`` /
      ``slot_desc_slots`` encode ``Do(v)``. ``slot_gsize`` is ``|Go(v)|``
      and ``obj_has_hierarchy`` flags the objects in ``OH``.

    For arbitrary vectorized ancestor tests the tree is additionally labelled
    with an Euler tour: ``tin[vid]`` / ``tout[vid]`` bound each value's
    subtree interval, so ``u`` is a proper ancestor of ``v`` iff
    ``tin[u] < tin[v] <= tout[u]`` (:meth:`is_ancestor_vid`). That turns the
    per-claim-per-candidate hierarchy checks of the TDH likelihood (Eq. 1/3)
    into three array comparisons.
    """

    def __init__(
        self,
        col: ColumnarClaims,
        tree,
        tour: Optional[Tuple[Dict, Dict, int]] = None,
    ) -> None:
        self.n_values = len(col.values)

        # --- Euler tour over the tree (iterative DFS, child order as built).
        # A predecessor encoding's tour (``(tin, tout, n_tree_nodes)``) is
        # reused when the tree has not grown since — hierarchies are
        # append-only, so equal node counts imply identical trees — which is
        # what lets ColumnarAppender extend the value-id tables without
        # re-touring on every crowdsourcing round.
        if tour is not None and tour[2] == len(tree):
            tin, tout = tour[0], tour[1]
        else:
            tin = {}
            tout = {}
            clock = 0
            stack: List[tuple] = [(tree.root, False)]
            while stack:
                node, done = stack.pop()
                if done:
                    tout[node] = clock
                    continue
                clock += 1
                tin[node] = clock
                stack.append((node, True))
                for child in reversed(tree.children(node)):
                    stack.append((child, False))
        self._tour: Tuple[Dict, Dict, int] = (tin, tout, len(tree))

        self.depth = np.asarray(
            [tree.depth(value) for value in col.values], dtype=np.int64
        )
        self.tin = np.asarray([tin[value] for value in col.values], dtype=np.int64)
        self.tout = np.asarray([tout[value] for value in col.values], dtype=np.int64)

        # --- value-level ancestor CSR (encoded ancestors only, nearest first)
        # plus the depth-1 "domain" ancestor per value.
        anc_offsets = [0]
        anc_vids: List[int] = []
        top_values: List[Hashable] = []
        for value in col.values:
            chain = tree.ancestors(value)  # nearest first, root excluded
            anc_vids.extend(
                col.value_index[a] for a in chain if a in col.value_index
            )
            anc_offsets.append(len(anc_vids))
            top_values.append(chain[-1] if chain else value)
        self.anc_offsets = np.asarray(anc_offsets, dtype=np.int64)
        self.anc_vids = np.asarray(anc_vids, dtype=np.int64)

        top_index: Dict[Hashable, int] = {}
        top_code: List[int] = []
        for top in top_values:
            code = top_index.get(top)
            if code is None:
                code = top_index[top] = len(top_index)
            top_code.append(code)
        self.top_values = top_values
        self.domains: List[Hashable] = list(top_index)
        self.top_code = np.asarray(top_code, dtype=np.int64)

        # --- value-level descendant CSR: invert the ancestor pairs.
        owner = np.repeat(
            np.arange(self.n_values, dtype=np.int64), np.diff(self.anc_offsets)
        )
        order = np.argsort(self.anc_vids, kind="stable")
        self.desc_vids = owner[order]
        desc_counts = np.bincount(self.anc_vids, minlength=self.n_values)
        self.desc_offsets = np.concatenate(
            ([0], np.cumsum(desc_counts))
        ).astype(np.int64)

        # --- slot-level CSR, harvested by ColumnarClaims from the contexts.
        self.slot_anc_offsets = col._slot_anc_offsets
        self.slot_anc_slots = col._slot_anc_slots
        self.slot_gsize = np.diff(self.slot_anc_offsets)
        slot_owner = np.repeat(
            np.arange(col.n_slots, dtype=np.int64), self.slot_gsize
        )
        slot_order = np.argsort(self.slot_anc_slots, kind="stable")
        self.slot_desc_slots = slot_owner[slot_order]
        slot_desc_counts = np.bincount(self.slot_anc_slots, minlength=col.n_slots)
        self.slot_desc_offsets = np.concatenate(
            ([0], np.cumsum(slot_desc_counts))
        ).astype(np.int64)
        self.obj_has_hierarchy = col._obj_has_hierarchy
        self.slot_depth = self.depth[col.slot_vid]

    # ------------------------------------------------------------------
    def ancestors_of_vid(self, vid: int) -> np.ndarray:
        """Encoded ancestor vids of ``vid``, nearest first."""
        return self.anc_vids[self.anc_offsets[vid] : self.anc_offsets[vid + 1]]

    def descendants_of_vid(self, vid: int) -> np.ndarray:
        """Encoded proper-descendant vids of ``vid``."""
        return self.desc_vids[self.desc_offsets[vid] : self.desc_offsets[vid + 1]]

    def ancestors_of_slot(self, slot: int) -> np.ndarray:
        """``Go(v)`` of a slot as global slots of the same object."""
        return self.slot_anc_slots[
            self.slot_anc_offsets[slot] : self.slot_anc_offsets[slot + 1]
        ]

    def descendants_of_slot(self, slot: int) -> np.ndarray:
        """``Do(v)`` of a slot as global slots of the same object."""
        return self.slot_desc_slots[
            self.slot_desc_offsets[slot] : self.slot_desc_offsets[slot + 1]
        ]

    def is_ancestor_vid(self, u_vids: np.ndarray, v_vids: np.ndarray) -> np.ndarray:
        """Elementwise "``u`` is a proper non-root ancestor of ``v``" test."""
        return (self.tin[u_vids] < self.tin[v_vids]) & (
            self.tout[v_vids] <= self.tout[u_vids]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarHierarchy(values={self.n_values},"
            f" anc_pairs={len(self.anc_vids)},"
            f" slot_anc_pairs={len(self.slot_anc_slots)})"
        )


class ColumnarAppender:
    """Catches a held :class:`ColumnarClaims` up with its mutated dataset.

    The dataset records every ``add_record`` / ``add_answer`` in an append
    log once an encoding exists (see
    :meth:`TruthDiscoveryDataset._ops_since`). ``refresh()`` diffs the held
    encoding's :attr:`~ColumnarClaims.version` against the dataset's and
    replays only the logged delta via :meth:`extend` — new claim rows are
    spliced into the CSR claim table, new candidate slots into the slot
    arrays of the touched objects, and the claimant/value decode tables are
    extended (renumbered to cold-rebuild first-encounter order only when an
    insert actually reorders them). The result is **array-equal to a cold
    rebuild** (the property suite in ``tests/test_columnar_appender.py``
    enforces this, hierarchy CSR and Euler intervals included) at O(delta)
    plus a few NumPy memcopies, instead of the O(claims) Python walk.

    Encodings are immutable snapshots: ``extend`` returns a *new*
    ``ColumnarClaims`` sharing every unchanged buffer with its predecessor,
    so encodings carried across ``dataset.copy()`` clones can never be
    corrupted by one side appending.

    Fallback rules — ``refresh()`` performs a cold rebuild when the delta is
    not an append (an in-place overwrite of an existing claim), or when the
    held encoding predates the dataset's log window. It raises
    :class:`StaleEncodingError` when the appender has outlived its dataset
    (the dataset is only weakly referenced, so e.g. a discarded clone does
    not keep its claim dicts alive through a forgotten appender), or when
    the held encoding is *ahead* of the dataset — the signature of an
    encoding handed to the wrong dataset clone.
    """

    def __init__(
        self, dataset: "TruthDiscoveryDataset", claims: Optional[ColumnarClaims] = None
    ) -> None:
        self._dataset_ref = weakref.ref(dataset)
        self.claims = claims if claims is not None else dataset.columnar()

    @property
    def dataset(self) -> "TruthDiscoveryDataset":
        dataset = self._dataset_ref()
        if dataset is None:
            raise StaleEncodingError(
                "this ColumnarAppender outlived its dataset; appenders hold"
                " their dataset weakly — re-create one from a live dataset"
            )
        return dataset

    def refresh(self) -> ColumnarClaims:
        """The held encoding, caught up to the dataset's current version."""
        dataset = self.dataset
        claims = self.claims
        target = getattr(dataset, "_version", 0)
        if not dataset._owns_encoding(claims):
            # Version counters coincide across sibling clones whose claims
            # diverged, so the lineage token — not the counter — is the
            # cross-clone guard.
            raise StaleEncodingError(
                f"held encoding (version {claims.version}) is not a snapshot"
                f" of this dataset's history (version {target}); it belongs"
                " to a different (cloned) dataset"
            )
        if claims.version == target:
            return claims
        ops = dataset._ops_since(claims.version)
        if ops is None:
            # Unservable window (overwrite, or trimmed past us): take the
            # dataset's own cache, which is either already current or
            # rebuilds once for every holder.
            claims = dataset.columnar()
        else:
            claims = self.extend(claims, dataset, ops)
        self.claims = claims
        return claims

    # ------------------------------------------------------------------
    @staticmethod
    def _restamped(
        col: ColumnarClaims, dataset: "TruthDiscoveryDataset"
    ) -> ColumnarClaims:
        """A same-content snapshot at the dataset's current version (the
        delta contained only no-op overwrites)."""
        new = ColumnarClaims.__new__(ColumnarClaims)
        new.__dict__.update(col.__dict__)
        new.version = getattr(dataset, "_version", 0)
        new.records_version = getattr(dataset, "_records_version", 0)
        new._lineage_token = getattr(dataset, "_lineage", None)
        return new

    @staticmethod
    def extend(
        col: ColumnarClaims,
        dataset: "TruthDiscoveryDataset",
        ops: Sequence[Tuple],
    ) -> ColumnarClaims:
        """Splice appendable ``ops`` into ``col``: a new encoding at the
        dataset's current version, array-equal to ``ColumnarClaims(dataset)``.

        ``ops`` are ``("record", obj, source, value)`` /
        ``("answer", obj, worker, value)`` tuples in mutation order, each a
        genuine append (overwrites never reach here — the dataset poisons its
        log instead, forcing the cold-rebuild fallback).
        """
        if not ops:
            return ColumnarAppender._restamped(col, dataset)

        n_obj_old = col.n_objects
        n_claims_old = col.n_claims
        n_slots_old = col.n_slots

        # ---- bucket the delta per object, assigning new object ids in
        # first-record order (== dict insertion order == cold-rebuild order).
        new_objects: List = []
        added_obj_index: Dict = {}
        record_ops: Dict[int, List[Tuple]] = {}
        answer_ops: Dict[int, List[Tuple]] = {}
        for kind, obj, claimant, value in ops:
            oid = col.object_index.get(obj)
            if oid is None:
                oid = added_obj_index.get(obj)
            if oid is None:
                # Only records introduce objects: add_answer validates the
                # value against candidates(obj), which requires records.
                if kind != "record":
                    raise ValueError(
                        f"append log references object {obj!r} before any record"
                    )
                oid = n_obj_old + len(new_objects)
                added_obj_index[obj] = oid
                new_objects.append(obj)
            bucket = record_ops if kind == "record" else answer_ops
            bucket.setdefault(oid, []).append((claimant, value))

        n_obj_new = n_obj_old + len(new_objects)
        if new_objects:
            objects = col.objects + new_objects
            object_index = dict(col.object_index)
            object_index.update(added_obj_index)
        else:
            objects = col.objects
            object_index = col.object_index

        # ---- provisional ids for unseen claimants (renumbered below).
        added_claimants: List[ClaimantKey] = []
        added_claimant_worker: List[bool] = []
        added_claimant_index: Dict[ClaimantKey, int] = {}

        def claimant_id(key: ClaimantKey, is_worker: bool) -> int:
            cid = col.claimant_index.get(key)
            if cid is None:
                cid = added_claimant_index.get(key)
            if cid is None:
                cid = col.n_claimants + len(added_claimants)
                added_claimant_index[key] = cid
                added_claimants.append(key)
                added_claimant_worker.append(is_worker)
            return cid

        # ---- which touched objects grew their candidate set (records only;
        # answers select among existing candidates by construction).
        touched = sorted(set(record_ops) | set(answer_ops))
        contexts = {oid: dataset.context(objects[oid]) for oid in touched}
        slot_changed: List[int] = []
        added_slot_values: Dict[int, List] = {}
        for oid in sorted(record_ops):
            ctx = contexts[oid]
            old_size = int(col.sizes[oid]) if oid < n_obj_old else 0
            if ctx.size > old_size:
                slot_changed.append(oid)
                # Candidates are append-only per object, so the delta is
                # exactly the tail of the rebuilt context's Vo order.
                added_slot_values[oid] = list(ctx.values[old_size:])

        # ---- claim-row insertion spec. Walking objects in ascending id
        # order with records-before-answers makes the positions sorted by
        # construction: new records land at the record/answer boundary of
        # their object's block, new answers at its end, new objects' rows
        # after everything.
        rec_counts = np.bincount(
            col.claim_obj[~col.claim_is_answer], minlength=n_obj_old
        )
        ins_pos: List[int] = []
        ins_obj: List[int] = []
        ins_cid: List[int] = []
        ins_ppos: List[int] = []
        ins_ans: List[bool] = []
        for oid in touched:
            ctx = contexts[oid]
            if oid < n_obj_old:
                rpos = int(col.claim_offsets[oid] + rec_counts[oid])
                apos = int(col.claim_offsets[oid + 1])
            else:
                rpos = apos = n_claims_old
            for source, value in record_ops.get(oid, ()):
                ins_pos.append(rpos)
                ins_obj.append(oid)
                ins_cid.append(claimant_id(source, False))
                ins_ppos.append(ctx.index[value])
                ins_ans.append(False)
            for worker, value in answer_ops.get(oid, ()):
                ins_pos.append(apos)
                ins_obj.append(oid)
                ins_cid.append(claimant_id(("worker", worker), True))
                ins_ppos.append(ctx.index[value])
                ins_ans.append(True)

        k = len(ins_pos)
        ins_pos_arr = np.asarray(ins_pos, dtype=np.int64)
        final_ins = ins_pos_arr + np.arange(k, dtype=np.int64)
        n_claims_new = n_claims_old + k
        keep = np.ones(n_claims_new, dtype=bool)
        keep[final_ins] = False

        def splice_claims(old: np.ndarray, inserted: List, dtype) -> np.ndarray:
            out = np.empty(n_claims_new, dtype=dtype)
            out[keep] = old
            out[final_ins] = inserted
            return out

        claim_obj = splice_claims(col.claim_obj, ins_obj, np.int64)
        claim_claimant = splice_claims(col.claim_claimant, ins_cid, np.int64)
        claim_pos = splice_claims(col.claim_pos, ins_ppos, np.int64)
        claim_is_answer = splice_claims(col.claim_is_answer, ins_ans, bool)
        claim_offsets = np.concatenate(
            ([0], np.cumsum(np.bincount(claim_obj, minlength=n_obj_new)))
        ).astype(np.int64)

        # ---- claimant table: keep cold-rebuild first-encounter order. A new
        # row can pull its claimant's first occurrence ahead of claimants
        # first seen later, so ids are re-ranked by first occurrence — the
        # relabel gather only runs when an insert actually reorders them.
        first = np.concatenate(
            [
                col._claimant_first
                + np.searchsorted(ins_pos_arr, col._claimant_first, side="right"),
                np.full(len(added_claimants), n_claims_new, dtype=np.int64),
            ]
        )
        np.minimum.at(first, np.asarray(ins_cid, dtype=np.int64), final_ins)
        claimants = col.claimants + added_claimants
        claimant_is_worker = (
            np.concatenate(
                [col.claimant_is_worker, np.asarray(added_claimant_worker, dtype=bool)]
            )
            if added_claimants
            else col.claimant_is_worker
        )
        claimant_remap = None
        if bool(np.all(np.diff(first) > 0)):
            if added_claimants:
                claimant_index = dict(col.claimant_index)
                claimant_index.update(added_claimant_index)
            else:
                claimants = col.claimants
                claimant_index = col.claimant_index
        else:
            order = np.argsort(first, kind="stable")
            remap = np.empty(len(order), dtype=np.int64)
            remap[order] = np.arange(len(order), dtype=np.int64)
            claim_claimant = remap[claim_claimant]
            claimants = [claimants[i] for i in order]
            claimant_is_worker = claimant_is_worker[order]
            claimant_index = {key: i for i, key in enumerate(claimants)}
            first = first[order]
            claimant_remap = remap  # provisional id -> re-ranked id

        # ---- slot arrays: untouched when the delta is answers-only (the
        # crowdsourcing hot path); otherwise splice the new candidate slots
        # and rebuild the touched objects' hierarchy CSR blocks.
        value_remap = None
        if slot_changed:
            added_values: List = []
            added_value_index: Dict = {}

            def value_id(value) -> int:
                vid = col.value_index.get(value)
                if vid is None:
                    vid = added_value_index.get(value)
                if vid is None:
                    vid = len(col.values) + len(added_values)
                    added_value_index[value] = vid
                    added_values.append(value)
                return vid

            slot_pos: List[int] = []
            slot_vid_ins: List[int] = []
            for oid in slot_changed:
                pos = (
                    int(col.value_offsets[oid + 1])
                    if oid < n_obj_old
                    else n_slots_old
                )
                for value in added_slot_values[oid]:
                    slot_pos.append(pos)
                    slot_vid_ins.append(value_id(value))
            sk = len(slot_pos)
            slot_pos_arr = np.asarray(slot_pos, dtype=np.int64)
            slot_final = slot_pos_arr + np.arange(sk, dtype=np.int64)
            n_slots_new = n_slots_old + sk
            skeep = np.ones(n_slots_new, dtype=bool)
            skeep[slot_final] = False
            slot_vid = np.empty(n_slots_new, dtype=np.int64)
            slot_vid[skeep] = col.slot_vid
            slot_vid[slot_final] = slot_vid_ins

            sizes = np.concatenate(
                [col.sizes, np.zeros(len(new_objects), dtype=np.int64)]
            )
            for oid, added in added_slot_values.items():
                sizes[oid] += len(added)
            value_offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
            slot_obj = np.repeat(np.arange(n_obj_new, dtype=np.int64), sizes)

            # Value ids re-ranked by first encounter, like claimants above.
            vfirst = np.concatenate(
                [
                    col._value_first
                    + np.searchsorted(slot_pos_arr, col._value_first, side="right"),
                    np.full(len(added_values), n_slots_new, dtype=np.int64),
                ]
            )
            np.minimum.at(vfirst, np.asarray(slot_vid_ins, dtype=np.int64), slot_final)
            values = col.values + added_values
            if bool(np.all(np.diff(vfirst) > 0)):
                if added_values:
                    value_index = dict(col.value_index)
                    value_index.update(added_value_index)
                else:
                    values = col.values
                    value_index = col.value_index
            else:
                vorder = np.argsort(vfirst, kind="stable")
                vremap = np.empty(len(vorder), dtype=np.int64)
                vremap[vorder] = np.arange(len(vorder), dtype=np.int64)
                slot_vid = vremap[slot_vid]
                values = [values[i] for i in vorder]
                value_index = {value: i for i, value in enumerate(values)}
                vfirst = vfirst[vorder]
                value_remap = vremap  # provisional id -> re-ranked id

            # Slot-level ancestor CSR: keep untouched objects' blocks (slot
            # ids shifted by their object's new start), rebuild touched ones
            # from the fresh contexts — a new candidate can be an ancestor or
            # descendant of existing ones, so the whole block is redone.
            delta_start = value_offsets[:n_obj_old] - col.value_offsets[:-1]
            entry_owner_slot = np.repeat(
                np.arange(n_slots_old, dtype=np.int64),
                np.diff(col._slot_anc_offsets),
            )
            entry_owner_obj = col.slot_obj[entry_owner_slot]
            keep_entries = ~np.isin(
                entry_owner_obj, np.asarray(slot_changed, dtype=np.int64)
            )
            kept_shift = delta_start[entry_owner_obj[keep_entries]]
            kept_owner = entry_owner_slot[keep_entries] + kept_shift
            kept_vals = col._slot_anc_slots[keep_entries] + kept_shift
            fresh_owner: List[int] = []
            fresh_vals: List[int] = []
            obj_has_hierarchy = np.concatenate(
                [col._obj_has_hierarchy, np.zeros(len(new_objects), dtype=bool)]
            )
            for oid in slot_changed:
                ctx = contexts[oid]
                start = int(value_offsets[oid])
                for i, ancestors in enumerate(ctx.ancestor_sets):
                    for j in ancestors:
                        fresh_owner.append(start + i)
                        fresh_vals.append(start + j)
                obj_has_hierarchy[oid] = ctx.has_hierarchy
            owner = np.concatenate(
                [kept_owner, np.asarray(fresh_owner, dtype=np.int64)]
            )
            anc_vals = np.concatenate(
                [kept_vals, np.asarray(fresh_vals, dtype=np.int64)]
            )
            entry_order = np.argsort(owner, kind="stable")
            slot_anc_slots = anc_vals[entry_order]
            slot_anc_offsets = np.concatenate(
                ([0], np.cumsum(np.bincount(owner, minlength=n_slots_new)))
            ).astype(np.int64)
            slot_pairs = None
            hierarchy = None  # value ids / slots moved: rebuild lazily ...
            tour_hint = (  # ... but hand the old Euler tour forward.
                col._hierarchy._tour if col._hierarchy is not None else col._tour_hint
            )
        else:
            slot_vid = col.slot_vid
            sizes = col.sizes
            value_offsets = col.value_offsets
            slot_obj = col.slot_obj
            values = col.values
            value_index = col.value_index
            vfirst = col._value_first
            slot_anc_offsets = col._slot_anc_offsets
            slot_anc_slots = col._slot_anc_slots
            obj_has_hierarchy = col._obj_has_hierarchy
            slot_pairs = col._slot_pairs
            hierarchy = col._hierarchy
            tour_hint = (
                hierarchy._tour if hierarchy is not None else col._tour_hint
            )

        new = ColumnarClaims.__new__(ColumnarClaims)
        new.objects = objects
        new.object_index = object_index
        new.version = getattr(dataset, "_version", 0)
        new.records_version = getattr(dataset, "_records_version", 0)
        new.claimants = claimants
        new.claimant_index = claimant_index
        new.values = values
        new.value_index = value_index
        new.value_offsets = value_offsets
        new.claim_offsets = claim_offsets
        new.slot_vid = slot_vid
        new.claim_obj = claim_obj
        new.claim_claimant = claim_claimant
        new.claim_pos = claim_pos
        new.claim_is_answer = claim_is_answer
        new.claimant_is_worker = claimant_is_worker
        new.sizes = sizes
        new.slot_obj = slot_obj
        new.claim_slot = value_offsets[claim_obj] + claim_pos
        new.claim_vid = slot_vid[new.claim_slot]
        new._slot_anc_offsets = slot_anc_offsets
        new._slot_anc_slots = slot_anc_slots
        new._obj_has_hierarchy = obj_has_hierarchy
        new._tree = col._tree
        # Pair expansion: an already-built cross-join is carried forward on
        # every append instead of being re-factorized on the next fit. When
        # the slot layout is untouched (answers, or records re-claiming
        # existing candidates) only the appended claims' pair rows are
        # computed; slot growth (new objects / brand-new candidate values)
        # takes the heavier `spliced_slot_growth` path, which recomputes the
        # pair layout but keeps the confusion-cell factorization. Either
        # way the cold `np.unique` never reruns (PAIR_EXPANSION_STATS
        # observes this); a never-built expansion stays lazy.
        if col._pairs is None:
            new._pairs = None
        elif slot_changed:
            new._pairs = PairExpansion.spliced_slot_growth(
                col._pairs,
                new,
                col,
                final_ins,
                claimant_remap=claimant_remap,
                value_remap=value_remap,
            )
        else:
            new._pairs = PairExpansion.spliced(
                col._pairs, new, final_ins, claimant_remap=claimant_remap
            )
        # The claimant -> objects CSR is slot-independent, so a built index
        # is spliced forward on every append (the frontier computation of
        # the incremental EM fits relies on this staying O(delta + tables)).
        if col._claimant_objects is not None:
            new._claimant_objects = ClaimantObjectsIndex.spliced(
                col._claimant_objects,
                len(claimants),
                n_obj_new,
                claim_claimant[final_ins],
                claim_obj[final_ins],
                claimant_remap=claimant_remap,
            )
        else:
            new._claimant_objects = None
        new._slot_pairs = slot_pairs
        new._hierarchy = hierarchy
        new._claimant_first = first
        new._value_first = vfirst
        new._tour_hint = tour_hint
        new._lineage_token = getattr(dataset, "_lineage", None)
        return new


class FrontierPlan:
    """The servable-delta plan returned by :func:`incremental_frontier`.

    Iterates as the historical ``(col, frontier, ops)`` triple; the extra
    fields describe how the slot layout moved between the warm fit and now,
    so incremental fits can scatter-expand their per-slot state into the
    grown layout instead of degrading cold.
    """

    def __init__(
        self,
        col: ColumnarClaims,
        frontier: np.ndarray,
        ops: List[tuple],
        *,
        prev_n_objects: int,
        prev_n_slots: int,
        slot_map: Optional[np.ndarray] = None,
        frontier_state: Optional[dict] = None,
        frontier_reused: bool = False,
    ) -> None:
        self.col = col
        self.frontier = frontier
        self.ops = ops
        #: Shapes of the encoding the warm state was fitted on.
        self.prev_n_objects = prev_n_objects
        self.prev_n_slots = prev_n_slots
        #: Old slot id -> new slot id; ``None`` when the layout is unchanged.
        self.slot_map = slot_map
        #: ``{"version", "hops", "frontier", "cids"}``; models attach it to
        #: their incremental results (``result.frontier_state``) and pass it
        #: back as ``reuse=`` next round.
        self.frontier_state = frontier_state
        #: True when the previous round's stored frontier covered this
        #: round's delta and was reused without a BFS.
        self.frontier_reused = frontier_reused
        self._new_slot_mask: Optional[np.ndarray] = None

    def __iter__(self):
        yield self.col
        yield self.frontier
        yield self.ops

    @property
    def grew(self) -> bool:
        """True when the window appended objects or candidate slots."""
        return self.slot_map is not None

    @property
    def new_slot_mask(self) -> np.ndarray:
        """Boolean mask over current slots: True where the slot did not exist
        in the previous layout. New slots always belong to frontier objects —
        only a record on a (by construction dirty) object creates them."""
        if self._new_slot_mask is None:
            mask = np.ones(self.col.n_slots, dtype=bool)
            if self.slot_map is not None:
                mask[self.slot_map] = False
            else:
                mask[:] = False
            self._new_slot_mask = mask
        return self._new_slot_mask

    def expand_slots(self, flat: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Scatter previous-layout per-slot state into the current layout.

        New slots get ``fill``. The incremental kernels' re-based global
        reductions use the expanded array only as accumulation *weights*, so
        the default 0.0 makes them ignore exactly the rows their stored
        totals never contained — the subtraction stays exact.
        """
        if self.slot_map is None:
            return np.array(flat, dtype=np.float64, copy=True)
        out = np.full(self.col.n_slots, fill, dtype=np.float64)
        out[self.slot_map] = flat
        return out


def incremental_frontier(
    dataset: "TruthDiscoveryDataset",
    prev_col: Optional[ColumnarClaims],
    hops: int = 1,
    reuse: Optional[dict] = None,
) -> Optional[FrontierPlan]:
    """The shared guard chain of the incremental EM fits.

    Decides whether the delta between ``prev_col`` (the encoding a previous
    fit ran on) and ``dataset``'s current state is servable incrementally,
    and if so computes the dirty-object frontier. Returns a
    :class:`FrontierPlan` (iterable as the historical ``(col, frontier,
    ops)`` triple) or ``None`` when the fit must run cold:

    * ``prev_col`` is missing or belongs to another dataset's lineage;
    * the op window is unservable (overwrite poisoned the log, or the
      ``MAX_OPLOG`` cap trimmed past ``prev_col.version`` — the
      ``_oplog_base`` check).

    Slot-layout *growth* — appended objects or candidate slots — is
    servable: objects and each object's candidates are append-stable, so the
    plan's ``slot_map`` (one ``csr_expand`` over the old per-object sizes)
    relocates every old slot into the new layout and
    :meth:`FrontierPlan.expand_slots` scatter-expands per-slot warm state
    accordingly. New slots only ever belong to dirty objects (a record
    append marks its object dirty), so the frontier re-converges them from
    scratch like any other frontier slot.

    ``reuse`` is a previous plan's ``frontier_state``. When this round's
    dirty objects and their claimants are contained in the stored frontier
    and claimant union (consecutive overlapping deltas — the serving steady
    state), the stored frontier is reused without a BFS: a superset frontier
    is always sound, it merely re-converges extra objects, and for
    ``hops=1`` containment of the dirty set and its claimants guarantees the
    stored set *is* a superset of the fresh 1-hop closure. Deeper hops
    recompute.

    The ops are captured **before** ``dataset.columnar()`` — that call
    curtails the log to the current version, which would empty the window.
    A saturated frontier (every object dirty-adjacent) is returned as-is;
    callers delegate to their full columnar fit for exact parity.
    """
    if prev_col is None or not dataset._owns_encoding(prev_col):
        return None
    delta = dataset.dirty_objects_since(prev_col.version)
    if delta is None:
        return None
    dirty_objects, ops = delta
    col = dataset.columnar()
    if col.n_objects < prev_col.n_objects or col.n_slots < prev_col.n_slots:
        return None  # shrinkage cannot come from appends; refuse defensively
    # Map the dirty set through the *current* encoding: a window that appends
    # an object names ids only this encoding knows, and repeated touches of
    # one object must collapse to one dirty id.
    dirty = np.unique(
        np.asarray([col.object_index[obj] for obj in dirty_objects], dtype=np.int64)
    )
    slot_map = None
    if col.n_objects != prev_col.n_objects or col.n_slots != prev_col.n_slots:
        slot_map = csr_expand(
            col.value_offsets[: prev_col.n_objects],
            np.diff(prev_col.value_offsets),
        )
    frontier = None
    cids = None
    reused = False
    if (
        reuse is not None
        and hops == 1
        and reuse.get("hops") == 1
        and reuse.get("version") == prev_col.version
        and len(dirty)
    ):
        # Object ids are append-stable, but claimant ids can be re-ranked by
        # an insert pulling a first occurrence forward — so the stored
        # claimant ids are only trusted while the current claimant table is
        # an extension of the stored one (``is`` covers the answers-only
        # steady state, where the appender reuses the list object).
        stored_claimants = reuse.get("claimants", ())
        prefix_ok = stored_claimants is col.claimants or (
            len(col.claimants) >= len(stored_claimants)
            and col.claimants[: len(stored_claimants)] == stored_claimants
        )
        if prefix_ok:
            prev_frontier = reuse["frontier"]
            claim_counts = np.diff(col.claim_offsets)
            rows = csr_expand(col.claim_offsets[dirty], claim_counts[dirty])
            dirty_cids = np.unique(col.claim_claimant[rows])
            if bool(np.all(np.isin(dirty, prev_frontier))) and bool(
                np.all(np.isin(dirty_cids, reuse["cids"]))
            ):
                frontier, cids, reused = prev_frontier, reuse["cids"], True
    if frontier is None:
        frontier, cids = col.frontier(dirty, hops=hops, return_claimants=True)
    return FrontierPlan(
        col,
        frontier,
        ops,
        prev_n_objects=prev_col.n_objects,
        prev_n_slots=prev_col.n_slots,
        slot_map=slot_map,
        frontier_state={
            "version": col.version,
            "hops": hops,
            "frontier": frontier,
            "cids": cids,
            "claimants": col.claimants,
        },
        frontier_reused=reused,
    )

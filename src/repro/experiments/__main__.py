"""CLI entry point: ``python -m repro.experiments <name> [--full]``."""

import argparse
import sys

from . import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (e.g. table3, fig6); 'all' runs everything",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's dataset sizes and round counts (slow)",
    )
    args = parser.parse_args(argv)
    if args.experiment is None:
        parser.print_help()
        print("\navailable experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} ===")
        EXPERIMENTS[name].main(full=args.full)
    return 0


if __name__ == "__main__":
    sys.exit(main())

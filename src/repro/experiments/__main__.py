"""CLI entry point: ``python -m repro.experiments <name> [--full] [--engine E]``."""

import argparse
import inspect
import sys

from . import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (importable so docs checks can dry-run it)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (e.g. table3, fig6); 'all' runs everything",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's dataset sizes and round counts (slow)",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "reference", "columnar"],
        default="auto",
        help=(
            "execution engine for experiments that support it (fig12, fig13"
            " and the crowd-loop figures fig5-fig10/fig14-16): the per-object"
            " dict loops (reference), the vectorized claim-table fast paths"
            " incl. columnar EAI assignment (columnar), or size-based"
            " selection (auto, default)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker count for the sharded parallel E/M executor (columnar"
            " engine only; TDH/LFC/CRH everywhere they run, DS/ZENCROWD in"
            " table3x). -1 uses every core; results are bitwise-identical"
            " at any N"
        ),
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "warm-started dirty-frontier EM for the crowd-loop experiments:"
            " each round re-converges only the objects touched by new"
            " answers (TDH/LFC; columnar engine only, falls back to cold"
            " fits whenever a delta cannot be served exactly)"
        ),
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment is None:
        parser.print_help()
        print("\navailable experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} ===")
        entry = EXPERIMENTS[name].main
        kwargs = {"full": args.full}
        parameters = inspect.signature(entry).parameters
        if "engine" in parameters:
            kwargs["engine"] = args.engine
        if "jobs" in parameters:
            kwargs["jobs"] = args.jobs
        if "incremental" in parameters:
            kwargs["incremental"] = args.incremental
        entry(**kwargs)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 11 — final accuracy when varying the worker quality ``pi_p``.

Simulated workers answer correctly with ``p_w ~ U(pi_p ± 0.05)``. Expected
shape: accuracy grows with ``pi_p`` for every combo; TDH+EAI is best at every
``pi_p``; DOCS degrades on Heritages (domain starvation); VOTE+ME is a strong
floor on Heritages where source reliabilities are unlearnable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .common import HEADLINE_COMBOS, both_datasets, format_series, scale
from .crowd_runs import run_combo

DEFAULT_PI = (0.55, 0.65, 0.75, 0.85, 0.95)


def run(full: bool = False, pi_values: Sequence[float] = DEFAULT_PI) -> Dict[str, dict]:
    s = scale(full)
    out: Dict[str, dict] = {}
    for ds_name, dataset in both_datasets(s).items():
        series: Dict[str, List[float]] = {
            f"{inf}+{asg}": [] for inf, asg in HEADLINE_COMBOS
        }
        for pi_p in pi_values:
            for inference, assigner in HEADLINE_COMBOS:
                history = run_combo(
                    dataset,
                    inference,
                    assigner,
                    s,
                    pi_p=pi_p,
                    evaluate_every=s.rounds,
                )
                series[f"{inference}+{assigner}"].append(history.final.accuracy)
        out[ds_name] = {"pi_p": list(pi_values), **series}
    return out


def main(full: bool = False) -> None:
    results = run(full)
    for ds_name, data in results.items():
        xs = data.pop("pi_p")
        print(
            format_series(
                data, xs, x_label="pi_p",
                title=f"Figure 11 — final Accuracy vs worker quality ({ds_name})",
            )
        )
        print()


if __name__ == "__main__":
    main()

"""Figure 6 — task-assignment comparison with the TDH inference fixed.

Accuracy vs crowdsourcing round for TDH+EAI, TDH+QASCA and TDH+ME on both
datasets. Expected shape: EAI climbs fastest; ME (uncertainty only) slowest.
"""

from __future__ import annotations

from typing import Dict

from .common import both_datasets, format_series, format_sparklines, scale
from .crowd_runs import run_combos

ASSIGNERS = ("EAI", "QASCA", "ME")


def run(
    full: bool = False, engine: str = "auto", jobs: int = 1,
    incremental: bool = False,
) -> Dict[str, Dict[str, list]]:
    """Per dataset: {"rounds": [...], "TDH+EAI": [accuracy...], ...}."""
    s = scale(full)
    out: Dict[str, Dict[str, list]] = {}
    for ds_name, dataset in both_datasets(s).items():
        histories = run_combos(
            dataset, [("TDH", a) for a in ASSIGNERS], s, engine=engine,
            jobs=jobs, incremental=incremental,
        )
        series: Dict[str, list] = {}
        rounds = None
        for combo, history in histories.items():
            rounds = [r.round for r in history.records]
            series[combo] = history.series("accuracy")
        out[ds_name] = {"rounds": rounds or [], **series}
    return out


def main(
    full: bool = False, engine: str = "auto", jobs: int = 1,
    incremental: bool = False,
) -> None:
    results = run(full, engine=engine, jobs=jobs, incremental=incremental)
    for ds_name, data in results.items():
        rounds = data.pop("rounds")
        shown = {k: v[::5] for k, v in data.items()}
        print(
            format_series(
                shown,
                rounds[::5],
                title=f"Figure 6 — Accuracy vs round ({ds_name}, every 5th round)",
            )
        )
        print()
        print(format_sparklines(data, title=f"(trajectories, {ds_name})"))
        print()


if __name__ == "__main__":
    main()

"""Figure 17 — crowdsourcing with (simulated) AMT workers on Heritages.

The paper collects answers from 20 Amazon Mechanical Turk workers for all
Heritages objects; our substitute is a 20-worker mixed-quality panel (a few
experts, mostly average workers, some spammers — see
:func:`repro.crowd.make_amt_panel`). All three quality measures per round for
the four compared combos.
"""

from __future__ import annotations

from typing import Dict

from ..crowd.workers import make_amt_panel
from .common import format_series, load_heritages, scale
from .crowd_runs import run_combos
from .fig14_human import COMBOS, METRICS


def run(full: bool = False, rounds: int = 20) -> Dict[str, dict]:
    s = scale(full)
    dataset = load_heritages(s)
    panel = make_amt_panel(20, seed=29)
    histories = run_combos(dataset, COMBOS, s, workers=panel, rounds=rounds)
    data: Dict[str, dict] = {
        "rounds": [r.round for r in next(iter(histories.values())).records]
    }
    for metric in METRICS:
        data[metric] = {
            combo: history.series(metric) for combo, history in histories.items()
        }
    return {"Heritages": data}


def main(full: bool = False) -> None:
    results = run(full)
    for ds_name, data in results.items():
        rounds = data["rounds"]
        for metric in METRICS:
            series = {k: v[::4] for k, v in data[metric].items()}
            print(
                format_series(
                    series,
                    rounds[::4],
                    title=f"Figure 17 — {metric}, AMT panel ({ds_name})",
                )
            )
            print()


if __name__ == "__main__":
    main()

"""Shared crowdsourcing-run helper for the Figure 6-17 / Table 4 experiments."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..crowd.simulator import CrowdSimulator, SimulationHistory
from ..crowd.workers import SimulatedWorker, make_worker_pool
from ..data.model import TruthDiscoveryDataset
from .common import ExperimentScale, make_combo


def run_combo(
    dataset: TruthDiscoveryDataset,
    inference: str,
    assigner: str,
    s: ExperimentScale,
    workers: Optional[Sequence[SimulatedWorker]] = None,
    rounds: Optional[int] = None,
    pi_p: float = 0.75,
    worker_seed: int = 3,
    answer_seed: int = 5,
    evaluate_every: int = 1,
    engine: str = "auto",
    jobs: int = 1,
    incremental: bool = False,
) -> SimulationHistory:
    """Run one inference+assignment combo through the crowdsourcing loop.

    ``engine`` / ``jobs`` thread the execution-engine and E/M-sharding
    choices into the combo, so the whole simulated crowd run stays on one
    live encoding and (for parallel-capable algorithms) fans its EM rounds
    out over ``jobs`` workers; ``incremental`` makes the supporting models
    re-converge only each round's dirty frontier.
    """
    model, task_assigner = make_combo(
        inference, assigner, s, engine=engine, n_jobs=jobs,
        incremental=incremental,
    )
    panel = (
        list(workers)
        if workers is not None
        else make_worker_pool(s.workers, pi_p=pi_p, seed=worker_seed)
    )
    simulator = CrowdSimulator(
        dataset, model, task_assigner, panel, seed=answer_seed
    )
    return simulator.run(
        rounds=rounds if rounds is not None else s.rounds,
        tasks_per_worker=s.tasks_per_worker,
        evaluate_every=evaluate_every,
    )


def run_combos(
    dataset: TruthDiscoveryDataset,
    combos: Sequence[Tuple[str, str]],
    s: ExperimentScale,
    **kwargs,
) -> Dict[str, SimulationHistory]:
    """Run several combos on (copies of) the same dataset; keyed "INF+ASG"."""
    out: Dict[str, SimulationHistory] = {}
    for inference, assigner in combos:
        out[f"{inference}+{assigner}"] = run_combo(
            dataset, inference, assigner, s, **kwargs
        )
    return out

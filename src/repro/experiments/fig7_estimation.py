"""Figure 7 — actual vs estimated accuracy improvement, EAI vs QASCA.

Per round, compare the assigner's own estimate of the accuracy gain of its
chosen tasks with the realised gain. The paper's finding: EAI's estimate
tracks the actual improvement (mean absolute error 0.08/0.26 pp on
BirthPlaces/Heritages) while QASCA systematically overestimates (0.28/2.66 pp)
because it ignores how many claims each object already has.
"""

from __future__ import annotations

from typing import Dict, List

from .common import both_datasets, format_series, scale
from .crowd_runs import run_combo


def run(full: bool = False, engine: str = "auto", jobs: int = 1) -> Dict[str, Dict[str, dict]]:
    """Per dataset and assigner: actual/estimated series (in percentage points)."""
    s = scale(full)
    out: Dict[str, Dict[str, dict]] = {}
    for ds_name, dataset in both_datasets(s).items():
        per_assigner: Dict[str, dict] = {}
        for assigner in ("EAI", "QASCA"):
            history = run_combo(dataset, "TDH", assigner, s, engine=engine, jobs=jobs)
            rounds: List[int] = []
            actual: List[float] = []
            estimated: List[float] = []
            for record in history.records[1:]:
                if record.estimated_improvement is None:
                    continue
                rounds.append(record.round)
                actual.append(100.0 * (record.actual_improvement or 0.0))
                estimated.append(100.0 * record.estimated_improvement)
            errors = [abs(a - e) for a, e in zip(actual, estimated)]
            per_assigner[assigner] = {
                "rounds": rounds,
                "actual_pp": actual,
                "estimated_pp": estimated,
                "mean_abs_error_pp": sum(errors) / len(errors) if errors else 0.0,
                "mean_bias_pp": (
                    sum(e - a for a, e in zip(actual, estimated)) / len(errors)
                    if errors
                    else 0.0
                ),
            }
        out[ds_name] = per_assigner
    return out


def main(full: bool = False, engine: str = "auto", jobs: int = 1) -> None:
    results = run(full, engine=engine, jobs=jobs)
    for ds_name, per_assigner in results.items():
        for assigner, data in per_assigner.items():
            print(
                format_series(
                    {"ACTUAL": data["actual_pp"][::5], "ESTIMATED": data["estimated_pp"][::5]},
                    data["rounds"][::5],
                    title=f"Figure 7 — {ds_name}-{assigner} (accuracy increase, %p)",
                )
            )
            print(
                f"mean |estimated-actual| = {data['mean_abs_error_pp']:.3f} pp, "
                f"bias = {data['mean_bias_pp']:+.3f} pp\n"
            )


if __name__ == "__main__":
    main()

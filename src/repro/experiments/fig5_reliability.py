"""Figure 5 — source reliability distribution in BirthPlaces.

Per source: the actual accuracy/generalized accuracy (from gold), TDH's
estimated ``phi_{s,1}``/``phi_{s,2}``, and ASUMS's single trust score
``t(s)``. The paper's point: ASUMS underestimates the reliability of sources
that generalize a lot (its single score conflates "generalized" with
"wrong"), while TDH separates the two.
"""

from __future__ import annotations

from typing import Dict, List

from ..eval.metrics import source_accuracy
from ..inference import Asums, TDHModel
from .common import format_table, load_birthplaces, scale


def run(full: bool = False, engine: str = "auto", jobs: int = 1) -> List[dict]:
    s = scale(full)
    dataset = load_birthplaces(s)
    tdh = TDHModel(
        max_iter=s.em_iterations, tol=s.em_tol, use_columnar=engine, n_jobs=jobs
    ).fit(dataset)
    asums_result = Asums(max_iter=s.em_iterations, use_columnar=engine).fit(dataset)
    trust = asums_result.trust  # type: ignore[attr-defined]

    rows = []
    for source in dataset.sources:
        stats = source_accuracy(dataset, source)
        phi1, phi2, _phi3 = tdh.source_trustworthiness(source)
        rows.append(
            {
                "Source": source,
                "Claims": stats["claims"],
                "Accuracy": stats["accuracy"],
                "GenAccuracy": stats["gen_accuracy"],
                "phi_s1": phi1,
                "phi_s2": phi2,
                "t(s)": float(trust.get(source, 0.0)),
            }
        )
    rows.sort(key=lambda r: -r["Claims"])
    return rows


def main(full: bool = False, engine: str = "auto", jobs: int = 1) -> None:
    rows = run(full, engine=engine, jobs=jobs)
    print(
        format_table(
            rows,
            ["Source", "Claims", "Accuracy", "GenAccuracy", "phi_s1", "phi_s2", "t(s)"],
            title="Figure 5 — source reliability distribution (BirthPlaces)",
        )
    )
    # TDH should track the actual accuracy better than ASUMS's single score.
    tdh_err = sum(abs(r["phi_s1"] - r["Accuracy"]) for r in rows) / len(rows)
    asums_err = sum(abs(r["t(s)"] - r["Accuracy"]) for r in rows) / len(rows)
    print(f"\nmean |phi_s1 - accuracy| (TDH):   {tdh_err:.4f}")
    print(f"mean |t(s)  - accuracy| (ASUMS): {asums_err:.4f}")


if __name__ == "__main__":
    main()

"""Table 6 — numeric truth discovery on the (synthetic) stock dataset.

TDH runs over the implicit rounding hierarchy (Section 3.2 extension); the
selection-based baselines (LCA, CRH, VOTE) choose among claimed values; CATD
and MEAN aggregate numerically and are therefore exposed to outliers —
exactly the paper's expected shape (TDH best on every attribute; MEAN and
CATD worst).
"""

from __future__ import annotations

from typing import Dict, List

from ..datasets.stock import ATTRIBUTES, claims_to_dataset, make_stock_claims
from ..eval.numeric import evaluate_numeric
from ..inference import Catd, Crh, GuessLca, Mean, TDHModel, Vote
from .common import format_table, scale


def run(full: bool = False, seed: int = 23) -> Dict[str, List[dict]]:
    s = scale(full)
    n_objects = 1000 if full else 150
    out: Dict[str, List[dict]] = {}
    for attribute in ATTRIBUTES:
        claims, gold = make_stock_claims(attribute, n_objects=n_objects, seed=seed)
        dataset = claims_to_dataset(claims, gold, name=f"stock-{attribute}")
        selection = {
            "TDH": TDHModel(max_iter=min(s.em_iterations, 25), tol=s.em_tol),
            "LCA": GuessLca(max_iter=min(s.em_iterations, 20), tol=s.em_tol),
            "CRH": Crh(max_iter=min(s.em_iterations, 20), tol=s.em_tol),
            "VOTE": Vote(),
        }
        rows = []
        for name, algo in selection.items():
            result = algo.fit(dataset)
            estimates = {obj: float(v) for obj, v in result.truths().items()}
            report = evaluate_numeric(estimates, gold)
            rows.append({"Algorithm": name, **report.as_row()})
        for name, algo in (("CATD", Catd()), ("MEAN", Mean())):
            estimates = algo.fit(claims)
            report = evaluate_numeric(estimates, gold)
            rows.append({"Algorithm": name, **report.as_row()})
        out[attribute] = rows
    return out


def main(full: bool = False) -> None:
    results = run(full)
    for attribute, rows in results.items():
        print(
            format_table(
                rows,
                ["Algorithm", "MAE", "R/E"],
                title=f"Table 6 — numeric evaluation ({attribute})",
            )
        )
        print()


if __name__ == "__main__":
    main()

"""Figures 8, 9, 10 — cost efficiency of the headline combos.

Accuracy (Fig 8), GenAccuracy (Fig 9) and AvgDistance (Fig 10) per round for
TDH+EAI, VOTE+ME, LCA+ME, DOCS+MB and DOCS+QASCA. The paper also derives the
cost saving: the number of rounds TDH+EAI needs to match the runner-up's
final accuracy.
"""

from __future__ import annotations

from typing import Dict, List

from .common import (
    HEADLINE_COMBOS,
    both_datasets,
    format_series,
    format_sparklines,
    scale,
)
from .crowd_runs import run_combos

METRICS = ("accuracy", "gen_accuracy", "avg_distance")


def cost_saving(
    ours: List[float], theirs_final: float, maximize: bool = True
) -> float:
    """Fraction of rounds saved reaching the competitor's final quality."""
    total = len(ours) - 1
    if total <= 0:
        return 0.0
    for i, value in enumerate(ours):
        if (value >= theirs_final) if maximize else (value <= theirs_final):
            return 1.0 - i / total
    return 0.0


def run(full: bool = False, engine: str = "auto", jobs: int = 1) -> Dict[str, dict]:
    s = scale(full)
    out: Dict[str, dict] = {}
    for ds_name, dataset in both_datasets(s).items():
        histories = run_combos(dataset, HEADLINE_COMBOS, s, engine=engine, jobs=jobs)
        rounds = [r.round for r in next(iter(histories.values())).records]
        data: Dict[str, dict] = {"rounds": rounds}
        for metric in METRICS:
            data[metric] = {
                combo: history.series(metric) for combo, history in histories.items()
            }
        # Cost saving of TDH+EAI vs the best non-TDH competitor on accuracy.
        final_acc = {
            combo: history.final.accuracy
            for combo, history in histories.items()
            if combo != "TDH+EAI"
        }
        runner_up = max(final_acc, key=final_acc.get)
        data["cost_saving_vs"] = runner_up
        data["cost_saving"] = cost_saving(
            data["accuracy"]["TDH+EAI"], final_acc[runner_up]
        )
        out[ds_name] = data
    return out


def main(full: bool = False, engine: str = "auto", jobs: int = 1) -> None:
    results = run(full, engine=engine, jobs=jobs)
    figure_no = {"accuracy": 8, "gen_accuracy": 9, "avg_distance": 10}
    for ds_name, data in results.items():
        rounds = data["rounds"]
        for metric in METRICS:
            series = {k: v[::5] for k, v in data[metric].items()}
            print(
                format_series(
                    series,
                    rounds[::5],
                    title=f"Figure {figure_no[metric]} — {metric} ({ds_name})",
                )
            )
            print()
        print(format_sparklines(data["accuracy"], title=f"(accuracy trajectories, {ds_name})"))
        print(
            f"TDH+EAI cost saving vs {data['cost_saving_vs']}: "
            f"{100 * data['cost_saving']:.0f}% of rounds\n"
        )


if __name__ == "__main__":
    main()

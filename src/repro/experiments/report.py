"""Machine-readable experiment reports.

``export_json`` runs any subset of the registered experiments and writes a
single JSON document with their raw results, suitable for regenerating plots
or diffing two runs (e.g. before/after a model change). Results are wrapped
with the scale settings used so a report is self-describing.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from .common import scale


def _registry():
    from . import EXPERIMENTS

    return EXPERIMENTS


def run_experiments(
    names: Optional[Iterable[str]] = None, full: bool = False
) -> Dict[str, object]:
    """Run experiments by id and return ``{id: raw run() output}``."""
    registry = _registry()
    selected = list(names) if names is not None else sorted(registry)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; options {sorted(registry)}")
    return {name: registry[name].run(full=full) for name in selected}


def export_json(
    path: Union[str, Path],
    names: Optional[Iterable[str]] = None,
    full: bool = False,
) -> Dict[str, object]:
    """Run experiments and write a self-describing JSON report to ``path``.

    Returns the report dictionary (also written to disk). Values that are not
    JSON-native (e.g. tuples) are coerced by the encoder's default hooks.
    """
    results = run_experiments(names, full=full)
    report = {
        "scale": asdict(scale(full)),
        "full": full,
        "results": results,
    }
    document = json.dumps(report, default=_coerce, indent=2)
    Path(path).write_text(document, encoding="utf-8")
    return report


def _coerce(value):
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    if hasattr(value, "tolist"):  # numpy arrays
        return value.tolist()
    raise TypeError(f"cannot serialise {type(value).__name__}")

"""Table 3 — performance of the ten truth-inference algorithms, no crowd.

Reports Accuracy / GenAccuracy / AvgDistance on (synthetic) BirthPlaces and
Heritages. Expected shape per the paper: TDH best on Accuracy and AvgDistance
on both datasets; VOTE near the top on GenAccuracy because many sources claim
generalized values; everything degrades on Heritages (long-tail sources).
"""

from __future__ import annotations

from typing import Dict, List

from ..eval.metrics import evaluate
from .common import both_datasets, format_table, inference_factories, scale


def run(full: bool = False, algorithms: List[str] | None = None) -> Dict[str, List[dict]]:
    """Rows per dataset: one per algorithm with the three quality measures."""
    s = scale(full)
    factories = inference_factories(s)
    names = algorithms if algorithms is not None else list(factories)
    out: Dict[str, List[dict]] = {}
    for ds_name, dataset in both_datasets(s).items():
        rows = []
        for name in names:
            result = factories[name]().fit(dataset)
            report = evaluate(dataset, result.truths())
            rows.append({"Algorithm": name, **report.as_row()})
        out[ds_name] = rows
    return out


def main(full: bool = False) -> None:
    results = run(full)
    for ds_name, rows in results.items():
        print(
            format_table(
                rows,
                ["Algorithm", "Accuracy", "GenAccuracy", "AvgDistance"],
                title=f"Table 3 — truth inference ({ds_name})",
            )
        )
        print()


if __name__ == "__main__":
    main()

"""Figure 13 — effect of the UEAI filtering on task-assignment time at scale.

The dataset is duplicated by a scale factor (the paper uses up to 15x) and
EAI assignment runs with and without the Lemma-4.1 upper-bound pruning. The
assignments must be identical; the pruned variant should evaluate far fewer
EAI scores and run faster as the scale grows.

The ``engine`` switch selects the execution path for the TDH fit that feeds
EAI, for both timed EAI assigners, and for one separately timed
representative truth-inference pass (CRH), so the same experiment shows how
the columnar claim engine bends both curves as the object count grows.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from ..assignment import EAIAssigner
from ..crowd.workers import make_worker_pool
from ..inference import Crh, TDHModel
from .common import both_datasets, format_table, scale


def run(
    full: bool = False,
    factors: Sequence[int] | None = None,
    engine: str = "auto",
    jobs: int = 1,
) -> Dict[str, List[dict]]:
    s = scale(full)
    factors = factors if factors is not None else ((5, 10, 15) if full else (1, 2, 4))
    workers = make_worker_pool(s.workers, seed=3)
    worker_ids = [w.worker_id for w in workers]
    out: Dict[str, List[dict]] = {}
    for ds_name, dataset in both_datasets(s).items():
        rows = []
        for factor in factors:
            scaled = dataset.scaled(factor)
            model = TDHModel(
                max_iter=min(s.em_iterations, 15),
                tol=s.em_tol,
                use_columnar=engine,
                n_jobs=jobs,
            )
            result = model.fit(scaled)

            crh = Crh(max_iter=min(s.em_iterations, 20), tol=s.em_tol,
                      use_columnar=engine, n_jobs=jobs)
            t0 = time.perf_counter()
            crh.fit(scaled)
            crh_time = time.perf_counter() - t0

            pruned = EAIAssigner(use_pruning=True, use_columnar=engine)
            t0 = time.perf_counter()
            assignment_pruned = pruned.assign(scaled, result, worker_ids, s.tasks_per_worker)
            pruned_time = time.perf_counter() - t0

            unpruned = EAIAssigner(use_pruning=False, use_columnar=engine)
            t0 = time.perf_counter()
            assignment_full = unpruned.assign(scaled, result, worker_ids, s.tasks_per_worker)
            full_time = time.perf_counter() - t0

            if assignment_pruned != assignment_full:
                raise AssertionError("pruning changed the assignment — bug")
            rows.append(
                {
                    "Scale": factor,
                    "Objects": len(scaled.objects),
                    "with filtering(s)": pruned_time,
                    "w/o filtering(s)": full_time,
                    "EAI evals (filtered)": pruned.eai_evaluations,
                    "EAI evals (all)": unpruned.eai_evaluations,
                    "time saved": 1.0 - pruned_time / full_time if full_time > 0 else 0.0,
                    "CRH TI(s)": crh_time,
                }
            )
        out[ds_name] = rows
    return out


def main(full: bool = False, engine: str = "auto", jobs: int = 1) -> None:
    results = run(full, engine=engine, jobs=jobs)
    for ds_name, rows in results.items():
        print(
            format_table(
                rows,
                [
                    "Scale",
                    "Objects",
                    "with filtering(s)",
                    "w/o filtering(s)",
                    "EAI evals (filtered)",
                    "EAI evals (all)",
                    "time saved",
                    "CRH TI(s)",
                ],
                title=(
                    f"Figure 13 — task-assignment time vs scale ({ds_name},"
                    f" engine={engine})"
                ),
            )
        )
        print()


if __name__ == "__main__":
    main()

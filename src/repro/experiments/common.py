"""Shared infrastructure for the paper-experiment harness.

Every experiment module exposes ``run(...) -> dict`` returning the rows or
series the corresponding table/figure reports, and can be executed as
``python -m repro.experiments <name> [--full]``. ``fast`` settings shrink the
datasets and round counts so the whole suite finishes on a laptop in minutes;
``--full`` uses the paper's scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..assignment import EAIAssigner, MaxEntropyAssigner, MbAssigner, QascaAssigner
from ..assignment.base import TaskAssigner
from ..data.model import TruthDiscoveryDataset
from ..datasets import make_birthplaces, make_heritages
from ..inference import (
    Accu,
    Asums,
    Crh,
    Docs,
    GuessLca,
    Lfc,
    Mdc,
    PopAccu,
    TDHModel,
    Vote,
)
from ..inference.base import TruthInferenceAlgorithm


@dataclass(frozen=True)
class ExperimentScale:
    """Dataset / crowdsourcing scale knobs shared by all experiments."""

    birthplaces_size: int
    heritages_size: int
    heritages_sources: int
    rounds: int
    workers: int
    tasks_per_worker: int
    em_iterations: int

    @property
    def em_tol(self) -> float:
        return 1e-4


# Scaled so the crowd budget per object matches the paper's regime:
# BirthPlaces 50 rounds x 50 answers / 6005 objects ~ 0.42 answers/object
# (scarce — assignment quality decides the outcome); Heritages ~ 3.2
# (plentiful). 10 rounds x 50 answers with these sizes keeps both ratios.
FAST = ExperimentScale(
    birthplaces_size=1200,
    heritages_size=160,
    heritages_sources=350,
    rounds=10,
    workers=10,
    tasks_per_worker=5,
    em_iterations=25,
)

FULL = ExperimentScale(
    birthplaces_size=6005,
    heritages_size=785,
    heritages_sources=1577,
    rounds=50,
    workers=10,
    tasks_per_worker=5,
    em_iterations=50,
)


def scale(full: bool = False) -> ExperimentScale:
    """The fast (default) or paper-scale settings."""
    return FULL if full else FAST


def load_birthplaces(s: ExperimentScale, seed: int = 7) -> TruthDiscoveryDataset:
    return make_birthplaces(size=s.birthplaces_size, seed=seed)


def load_heritages(s: ExperimentScale, seed: int = 11) -> TruthDiscoveryDataset:
    return make_heritages(
        size=s.heritages_size, n_sources=s.heritages_sources, seed=seed
    )


def both_datasets(s: ExperimentScale) -> Dict[str, TruthDiscoveryDataset]:
    return {"BirthPlaces": load_birthplaces(s), "Heritages": load_heritages(s)}


# ---------------------------------------------------------------------------
# algorithm registries (the paper's Section 5.1 lists)
# ---------------------------------------------------------------------------
def inference_factories(
    s: ExperimentScale, engine: str = "auto", n_jobs: int = 1,
    incremental: bool = False,
) -> Dict[str, Callable[[], TruthInferenceAlgorithm]]:
    """The ten single-truth inference algorithms of Table 3.

    ``engine`` (``"auto"`` / ``"reference"`` / ``"columnar"``) selects the
    execution engine for the algorithms that ship a columnar fast path —
    all of them except MDC; see ``docs/algorithms.md`` for the matrix.
    ``n_jobs`` (the CLI's ``--jobs``) additionally shards the columnar E/M
    steps of the parallel-capable algorithms (TDH, LFC, CRH here; DS and
    ZENCROWD in the Table-3-extended set) over that many workers — results
    are bitwise-identical at any worker count. ``incremental`` (the CLI's
    ``--incremental``) turns on dirty-frontier warm-started EM for the
    algorithms that support it (TDH and LFC here): each crowd round
    re-converges only the objects touched by new answers.
    """
    iters = s.em_iterations
    tol = s.em_tol
    return {
        "TDH": lambda: TDHModel(
            max_iter=iters, tol=tol, use_columnar=engine, n_jobs=n_jobs,
            incremental=incremental,
        ),
        "VOTE": lambda: Vote(use_columnar=engine),
        "LCA": lambda: GuessLca(max_iter=iters, tol=tol, use_columnar=engine),
        "DOCS": lambda: Docs(max_iter=iters, tol=tol, use_columnar=engine),
        "ASUMS": lambda: Asums(max_iter=iters, tol=tol, use_columnar=engine),
        "MDC": lambda: Mdc(max_iter=min(iters, 20), tol=tol),
        "ACCU": lambda: Accu(max_iter=min(iters, 15), tol=tol, use_columnar=engine),
        "POPACCU": lambda: PopAccu(
            max_iter=min(iters, 15), tol=tol, use_columnar=engine
        ),
        "LFC": lambda: Lfc(
            max_iter=min(iters, 20), tol=tol, use_columnar=engine, n_jobs=n_jobs,
            incremental=incremental,
        ),
        "CRH": lambda: Crh(
            max_iter=min(iters, 20), tol=tol, use_columnar=engine, n_jobs=n_jobs
        ),
    }


def assigner_factories(engine: str = "auto") -> Dict[str, Callable[[], TaskAssigner]]:
    """The Table-4 assignment policies.

    ``engine`` threads the execution-engine choice into the two assigners
    with a columnar fast path: EAI (consumes TDH's EM state) and QASCA
    (consumes the flat confidences); the other policies have no engine
    switch.
    """
    return {
        "EAI": lambda: EAIAssigner(use_columnar=engine),
        "QASCA": lambda: QascaAssigner(seed=0, use_columnar=engine),
        "ME": lambda: MaxEntropyAssigner(),
        "MB": lambda: MbAssigner(),
    }


# Valid inference x assignment pairings (Table 4; '-' cells are impossible).
TABLE4_COMBOS: Dict[str, Sequence[str]] = {
    "TDH": ("EAI", "QASCA", "ME"),
    "DOCS": ("MB", "QASCA", "ME"),
    "LCA": ("QASCA", "ME"),
    "POPACCU": ("QASCA", "ME"),
    "ACCU": ("QASCA", "ME"),
    "ASUMS": ("ME",),
    "CRH": ("ME",),
    "MDC": ("ME",),
    "LFC": ("ME",),
    "VOTE": ("ME",),
}

# The best / second-best combos the paper focuses on in Figures 8-10, 14-17.
HEADLINE_COMBOS: Sequence[Sequence[str]] = (
    ("TDH", "EAI"),
    ("VOTE", "ME"),
    ("LCA", "ME"),
    ("DOCS", "MB"),
    ("DOCS", "QASCA"),
)


def make_combo(
    inference: str,
    assigner: str,
    s: ExperimentScale,
    engine: str = "auto",
    n_jobs: int = 1,
    incremental: bool = False,
) -> tuple[TruthInferenceAlgorithm, TaskAssigner]:
    """Instantiate an inference+assignment pair by name.

    ``engine`` selects the execution engine for both sides of the combo
    (inference fast paths and the EAI/QASCA columnar quality measures), so
    a whole crowdsourcing run stays on one encoding; ``n_jobs`` shards the
    parallel-capable inference E/M steps across workers; ``incremental``
    switches the supporting models to dirty-frontier warm-started rounds.
    """
    model = inference_factories(
        s, engine=engine, n_jobs=n_jobs, incremental=incremental
    )[inference]()
    task_assigner = assigner_factories(engine)[assigner]()
    return model, task_assigner


# ---------------------------------------------------------------------------
# table formatting
# ---------------------------------------------------------------------------
def format_table(
    rows: Iterable[Dict[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.4f}",
) -> str:
    """Render rows as a fixed-width text table with the paper's column names."""
    rows = list(rows)
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "-")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render a numeric series as a unicode sparkline (terminal "figure").

    ``lo``/``hi`` pin the scale (useful when comparing several series);
    defaults to the series' own range. Constant series render mid-height.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    low = min(values) if lo is None else lo
    high = max(values) if hi is None else hi
    span = high - low
    if span <= 0:
        return SPARK_BLOCKS[3] * len(values)
    out = []
    for value in values:
        position = (value - low) / span
        index = min(int(position * len(SPARK_BLOCKS)), len(SPARK_BLOCKS) - 1)
        out.append(SPARK_BLOCKS[max(index, 0)])
    return "".join(out)


def format_sparklines(
    series: Dict[str, Sequence[float]], title: str = "", width: int = 12
) -> str:
    """Render named series as aligned sparklines with min/max annotations."""
    lines = [title] if title else []
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return title
    lo, hi = min(all_values), max(all_values)
    name_width = max((len(name) for name in series), default=0)
    for name, values in series.items():
        lines.append(
            f"{name.ljust(name_width)}  {sparkline(values, lo, hi)}"
            f"  [{values[0]:.4f} -> {values[-1]:.4f}]"
        )
    lines.append(f"{'scale'.ljust(name_width)}  lo={lo:.4f} hi={hi:.4f}")
    return "\n".join(lines)


def format_series(
    series: Dict[str, Sequence[float]],
    xs: Sequence[object],
    x_label: str = "Round",
    title: str = "",
    float_format: str = "{:.4f}",
) -> str:
    """Render named series (one column per name) against shared x values."""
    columns = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = float(values[i]) if i < len(values) else float("nan")
        rows.append(row)
    return format_table(rows, columns, title=title, float_format=float_format)

"""Extended Table 3 — the paper's roster plus the classic algorithms.

Adds the link-analysis family (SUMS, AverageLog, Investment,
PooledInvestment), TruthFinder, Dawid-Skene and ZenCrowd to the Table-3
comparison. These are the algorithms the paper's related-work section and the
survey it cites ([40]) discuss; including them shows where the hierarchy-aware
model sits against the broader field.
"""

from __future__ import annotations

from typing import Dict, List

from ..eval.metrics import evaluate
from ..inference import (
    AverageLog,
    DawidSkene,
    Investment,
    PooledInvestment,
    Sums,
    TruthFinder,
    ZenCrowd,
)
from .common import both_datasets, format_table, inference_factories, scale


def extra_factories(s, engine: str = "auto", n_jobs: int = 1) -> Dict[str, object]:
    """``engine`` / ``n_jobs`` reach the two extended algorithms with a
    columnar (and parallel-capable) engine: DS and ZENCROWD; the
    link-analysis family is reference-only."""
    iters = min(s.em_iterations, 20)
    return {
        "SUMS": lambda: Sums(max_iter=iters),
        "AVGLOG": lambda: AverageLog(max_iter=iters),
        "INVEST": lambda: Investment(max_iter=iters),
        "POOLED": lambda: PooledInvestment(max_iter=iters),
        "TRUTHFINDER": lambda: TruthFinder(max_iter=iters),
        "DS": lambda: DawidSkene(max_iter=iters, use_columnar=engine, n_jobs=n_jobs),
        "ZENCROWD": lambda: ZenCrowd(max_iter=iters, use_columnar=engine, n_jobs=n_jobs),
    }


def run(full: bool = False, engine: str = "auto", jobs: int = 1) -> Dict[str, List[dict]]:
    s = scale(full)
    factories = dict(inference_factories(s, engine=engine, n_jobs=jobs))
    factories.update(extra_factories(s, engine=engine, n_jobs=jobs))
    out: Dict[str, List[dict]] = {}
    for ds_name, dataset in both_datasets(s).items():
        rows = []
        for name, factory in factories.items():
            result = factory().fit(dataset)
            report = evaluate(dataset, result.truths())
            rows.append({"Algorithm": name, **report.as_row()})
        rows.sort(key=lambda r: -r["Accuracy"])
        out[ds_name] = rows
    return out


def main(full: bool = False, engine: str = "auto", jobs: int = 1) -> None:
    results = run(full, engine=engine, jobs=jobs)
    for ds_name, rows in results.items():
        print(
            format_table(
                rows,
                ["Algorithm", "Accuracy", "GenAccuracy", "AvgDistance"],
                title=f"Extended Table 3 — 17 algorithms ({ds_name})",
            )
        )
        print()


if __name__ == "__main__":
    main()

"""Figure 1 — generalization tendencies of the sources.

The paper plots, per source, generalized accuracy against exact accuracy:
sources on the diagonal never generalize; the vertical gap is the source's
generalization tendency. We report the scatter points for both datasets.
"""

from __future__ import annotations

from typing import Dict, List

from ..eval.metrics import source_accuracy
from .common import ExperimentScale, both_datasets, format_table, scale


def run(full: bool = False) -> Dict[str, List[dict]]:
    """Per-source (claims, accuracy, gen_accuracy) scatter for both datasets."""
    s = scale(full)
    out: Dict[str, List[dict]] = {}
    for name, dataset in both_datasets(s).items():
        rows = []
        for source in dataset.sources:
            stats = source_accuracy(dataset, source)
            if stats["claims"] == 0:
                continue
            rows.append(
                {
                    "Source": source,
                    "Claims": stats["claims"],
                    "Accuracy": stats["accuracy"],
                    "GenAccuracy": stats["gen_accuracy"],
                    "Tendency": stats["gen_accuracy"] - stats["accuracy"],
                }
            )
        rows.sort(key=lambda r: -r["Claims"])
        out[name] = rows
    return out


def main(full: bool = False) -> None:
    results = run(full)
    for name, rows in results.items():
        shown = rows[:15]
        print(
            format_table(
                shown,
                ["Source", "Claims", "Accuracy", "GenAccuracy", "Tendency"],
                title=f"Figure 1 — generalization tendencies ({name}, top {len(shown)} by claims)",
            )
        )
        above_diagonal = sum(1 for r in rows if r["Tendency"] > 0.01)
        print(
            f"{above_diagonal}/{len(rows)} sources claim generalized values "
            "(above the diagonal)\n"
        )


if __name__ == "__main__":
    main()

"""Table 5 — single- vs multi-truth algorithms on precision / recall / F1.

Because a value and its ancestors are all correct, the paper evaluates with
ancestor-closure multi-truths: single-truth outputs are expanded to their
closure, multi-truth algorithms (LFC-MT, DART, LTM) emit sets directly.
Expected shape: TDH best F1 on both datasets; DART recall-heavy with the
lowest precision; LTM conservative (low recall).
"""

from __future__ import annotations

from typing import Dict, List

from ..eval.multitruth import evaluate_multitruth, single_truth_as_sets
from ..inference import Dart, LfcMT, Ltm
from .common import both_datasets, format_table, inference_factories, scale

SINGLE_TRUTH = (
    "TDH", "VOTE", "LCA", "DOCS", "ASUMS", "POPACCU", "LFC", "MDC", "ACCU", "CRH",
)


def run(full: bool = False) -> Dict[str, List[dict]]:
    s = scale(full)
    factories = inference_factories(s)
    multi_factories = {
        "LFC-MT": lambda: LfcMT(max_iter=min(s.em_iterations, 20), tol=s.em_tol),
        "DART": lambda: Dart(max_iter=min(s.em_iterations, 25), tol=s.em_tol),
        "LTM": lambda: Ltm(max_iter=min(s.em_iterations, 25), tol=s.em_tol),
    }
    out: Dict[str, List[dict]] = {}
    for ds_name, dataset in both_datasets(s).items():
        rows = []
        for name in SINGLE_TRUTH:
            result = factories[name]().fit(dataset)
            sets = single_truth_as_sets(dataset, result.truths())
            report = evaluate_multitruth(dataset, sets)
            rows.append({"Kind": "Single", "Algorithm": name, **report.as_row()})
        for name, factory in multi_factories.items():
            result = factory().fit(dataset)
            report = evaluate_multitruth(dataset, result.truth_sets())
            rows.append({"Kind": "Multi", "Algorithm": name, **report.as_row()})
        out[ds_name] = rows
    return out


def main(full: bool = False) -> None:
    results = run(full)
    for ds_name, rows in results.items():
        print(
            format_table(
                rows,
                ["Kind", "Algorithm", "Precision", "Recall", "F1"],
                title=f"Table 5 — multi-truth evaluation ({ds_name})",
                float_format="{:.3f}",
            )
        )
        print()


if __name__ == "__main__":
    main()

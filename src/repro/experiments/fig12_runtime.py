"""Figure 12 — execution time per crowdsourcing round.

Average truth-inference and task-assignment seconds per round for every
Table-4 combo. Absolute times depend on the machine; the paper's ordering —
VOTE fastest, LFC slow where candidate sets are large, ACCU/POPACCU slow
where sources are many (pairwise dependence analysis) — is the reproduced
shape.
"""

from __future__ import annotations

from typing import Dict, List

from .common import TABLE4_COMBOS, both_datasets, format_table, scale
from .crowd_runs import run_combo

# One representative combo per inference algorithm, as plotted in Figure 12.
FIG12_COMBOS = (
    ("VOTE", "ME"),
    ("CRH", "ME"),
    ("POPACCU", "ME"),
    ("ACCU", "ME"),
    ("DOCS", "MB"),
    ("TDH", "EAI"),
    ("MDC", "ME"),
    ("LCA", "ME"),
    ("ASUMS", "ME"),
    ("LFC", "ME"),
)


def run(
    full: bool = False, rounds: int = 5, engine: str = "auto", jobs: int = 1
) -> Dict[str, List[dict]]:
    """``engine`` selects the inference execution path for the algorithms
    with a columnar fast path (``reference`` / ``columnar`` / ``auto``)."""
    s = scale(full)
    out: Dict[str, List[dict]] = {}
    for ds_name, dataset in both_datasets(s).items():
        rows = []
        for inference, assigner in FIG12_COMBOS:
            history = run_combo(
                dataset,
                inference,
                assigner,
                s,
                rounds=rounds,
                evaluate_every=1,
                engine=engine,
                jobs=jobs,
            )
            records = history.records[1:]
            inf_time = sum(r.inference_seconds for r in records) / len(records)
            asg_time = sum(r.assignment_seconds for r in records) / len(records)
            rows.append(
                {
                    "Combo": f"{inference}+{assigner}",
                    "Inference(s)": inf_time,
                    "Assignment(s)": asg_time,
                    "Total(s)": inf_time + asg_time,
                }
            )
        rows.sort(key=lambda r: r["Total(s)"])
        out[ds_name] = rows
    return out


def main(full: bool = False, engine: str = "auto", jobs: int = 1) -> None:
    results = run(full, engine=engine, jobs=jobs)
    for ds_name, rows in results.items():
        print(
            format_table(
                rows,
                ["Combo", "Inference(s)", "Assignment(s)", "Total(s)"],
                title=(
                    f"Figure 12 — execution time per round ({ds_name},"
                    f" engine={engine})"
                ),
            )
        )
        print()


if __name__ == "__main__":
    main()

"""Table 4 — accuracy of every inference x assignment combo after the last round.

Impossible pairings (e.g. VOTE+EAI — EAI needs TDH's EM state) are reported
as "-", matching the paper's table. Expected shape: TDH+EAI best overall;
TDH rows dominate their columns; EAI > QASCA > ME within the TDH row.
"""

from __future__ import annotations

from typing import Dict, List

from .common import TABLE4_COMBOS, both_datasets, format_table, scale
from .crowd_runs import run_combo

ASSIGNER_COLUMNS = ("EAI", "MB", "QASCA", "ME")


def run(full: bool = False) -> Dict[str, List[dict]]:
    s = scale(full)
    out: Dict[str, List[dict]] = {}
    for ds_name, dataset in both_datasets(s).items():
        rows = []
        for inference, assigners in TABLE4_COMBOS.items():
            row: Dict[str, object] = {"Algorithm": inference}
            for assigner in ASSIGNER_COLUMNS:
                if assigner not in assigners:
                    row[assigner] = "-"
                    continue
                history = run_combo(
                    dataset, inference, assigner, s, evaluate_every=s.rounds
                )
                row[assigner] = history.final.accuracy
            rows.append(row)
        out[ds_name] = rows
    return out


def main(full: bool = False) -> None:
    results = run(full)
    for ds_name, rows in results.items():
        print(
            format_table(
                rows,
                ["Algorithm", *ASSIGNER_COLUMNS],
                title=f"Table 4 — Accuracy after the final round ({ds_name})",
            )
        )
        print()


if __name__ == "__main__":
    main()

"""Figures 14, 15, 16 — crowdsourcing with (simulated) human annotators.

The paper runs 10 human annotators for 20 rounds on its own platform; our
substitute is a higher-quality simulated panel with a generalization habit
(see :func:`repro.crowd.make_human_panel` and DESIGN.md §4). Reported:
Accuracy / GenAccuracy / AvgDistance per round for the four compared combos.
"""

from __future__ import annotations

from typing import Dict

from ..crowd.workers import make_human_panel
from .common import both_datasets, format_series, scale
from .crowd_runs import run_combos

COMBOS = (("TDH", "EAI"), ("LCA", "ME"), ("DOCS", "MB"), ("DOCS", "QASCA"))
METRICS = ("accuracy", "gen_accuracy", "avg_distance")


def run(full: bool = False, rounds: int = 20, engine: str = "auto", jobs: int = 1) -> Dict[str, dict]:
    s = scale(full)
    panel = make_human_panel(10, seed=17)
    out: Dict[str, dict] = {}
    for ds_name, dataset in both_datasets(s).items():
        histories = run_combos(
            dataset, COMBOS, s, workers=panel, rounds=rounds, engine=engine, jobs=jobs
        )
        data: Dict[str, dict] = {
            "rounds": [r.round for r in next(iter(histories.values())).records]
        }
        for metric in METRICS:
            data[metric] = {
                combo: history.series(metric) for combo, history in histories.items()
            }
        out[ds_name] = data
    return out


def main(full: bool = False, engine: str = "auto", jobs: int = 1) -> None:
    results = run(full, engine=engine, jobs=jobs)
    figure_no = {"accuracy": 14, "gen_accuracy": 15, "avg_distance": 16}
    for ds_name, data in results.items():
        rounds = data["rounds"]
        for metric in METRICS:
            series = {k: v[::4] for k, v in data[metric].items()}
            print(
                format_series(
                    series,
                    rounds[::4],
                    title=f"Figure {figure_no[metric]} — {metric}, human panel ({ds_name})",
                )
            )
            print()


if __name__ == "__main__":
    main()

"""Experiment harness: one module per table/figure of the paper.

Run ``python -m repro.experiments`` for the menu, or
``python -m repro.experiments table3 [--full]`` for a single experiment.
"""

from . import (
    fig1_tendency,
    table3_inference,
    table3_extended,
    fig5_reliability,
    fig6_assignment,
    fig7_estimation,
    table4_combos,
    fig8_cost,
    fig11_worker_quality,
    fig12_runtime,
    fig13_scaling,
    fig14_human,
    fig17_amt,
    table5_multitruth,
    table6_numeric,
)

EXPERIMENTS = {
    "fig1": fig1_tendency,
    "table3": table3_inference,
    "table3x": table3_extended,
    "fig5": fig5_reliability,
    "fig6": fig6_assignment,
    "fig7": fig7_estimation,
    "table4": table4_combos,
    "fig8": fig8_cost,       # also figs 9 and 10
    "fig11": fig11_worker_quality,
    "fig12": fig12_runtime,
    "fig13": fig13_scaling,
    "fig14": fig14_human,    # also figs 15 and 16
    "fig17": fig17_amt,
    "table5": table5_multitruth,
    "table6": table6_numeric,
}

__all__ = ["EXPERIMENTS"]

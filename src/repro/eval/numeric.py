"""Numeric evaluation: MAE and relative error (paper Table 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..data.model import ObjectId


@dataclass(frozen=True)
class NumericReport:
    """Mean absolute error and mean relative error over evaluated objects."""

    mae: float
    relative_error: float
    num_objects: int

    def as_row(self) -> Dict[str, float]:
        return {"MAE": self.mae, "R/E": self.relative_error}


def evaluate_numeric(
    estimated: Mapping[ObjectId, float],
    gold: Mapping[ObjectId, float],
    epsilon: float = 1e-9,
) -> NumericReport:
    """Score numeric estimates.

    ``relative_error`` for an object is ``|est - truth| / max(|truth|, eps)``;
    the epsilon guards truths at exactly zero (e.g. a 0.0 change rate).
    """
    n = 0
    abs_error = 0.0
    rel_error = 0.0
    for obj, truth in gold.items():
        if obj not in estimated:
            continue
        n += 1
        err = abs(float(estimated[obj]) - float(truth))
        abs_error += err
        rel_error += err / max(abs(float(truth)), epsilon)
    if n == 0:
        raise ValueError("no overlapping objects between estimates and gold")
    return NumericReport(mae=abs_error / n, relative_error=rel_error / n, num_objects=n)

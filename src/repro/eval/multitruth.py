"""Multi-truth evaluation: precision / recall / F1 (paper Section 5.7).

With hierarchies, the truth ``v`` and all its ancestors are correct, so the
paper evaluates multi-truth algorithms against the *ancestor closure* of the
gold value, and converts single-truth outputs to multi-truth by taking the
closure of the estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Set

from ..data.model import ObjectId, TruthDiscoveryDataset
from ..hierarchy.tree import Hierarchy, Value
from .metrics import effective_truth


@dataclass(frozen=True)
class PRFReport:
    """Precision / recall / F1 aggregated over objects (micro-averaged)."""

    precision: float
    recall: float
    f1: float
    num_objects: int

    def as_row(self) -> Dict[str, float]:
        return {"Precision": self.precision, "Recall": self.recall, "F1": self.f1}


def ancestor_closure(hierarchy: Hierarchy, value: Value) -> Set[Value]:
    """``value`` plus all its non-root ancestors — the paper's multi-truth set."""
    return set(hierarchy.ancestors_with_self(value))


def closure_within_candidates(
    dataset: TruthDiscoveryDataset, obj: ObjectId, value: Value
) -> Set[Value]:
    """Ancestor closure of ``value`` restricted to the candidate set of ``obj``."""
    ctx = dataset.context(obj)
    return {v for v in ancestor_closure(dataset.hierarchy, value) if v in ctx.index}


def evaluate_multitruth(
    dataset: TruthDiscoveryDataset,
    estimated_sets: Mapping[ObjectId, Set[Value]],
    gold: Optional[Mapping[ObjectId, Value]] = None,
    restrict_to_candidates: bool = True,
) -> PRFReport:
    """Micro-averaged precision / recall / F1 against ancestor-closure truths.

    The gold multi-truth of an object is the ancestor closure of its effective
    truth, restricted (by default) to the candidate values — an algorithm can
    only output candidates, so unclaimed ancestors are unreachable and would
    deflate recall for every method equally.
    """
    gold = gold if gold is not None else dataset.gold
    tp = fp = fn = 0
    n = 0
    for obj, gold_value in gold.items():
        if obj not in estimated_sets:
            continue
        n += 1
        target = effective_truth(dataset, obj, gold_value)
        if target is None:
            truth_set: Set[Value] = set()
        elif restrict_to_candidates:
            truth_set = closure_within_candidates(dataset, obj, target)
        else:
            truth_set = ancestor_closure(dataset.hierarchy, target)
        predicted = set(estimated_sets[obj])
        tp += len(predicted & truth_set)
        fp += len(predicted - truth_set)
        fn += len(truth_set - predicted)
    if n == 0:
        raise ValueError("no overlapping objects between estimates and gold")
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return PRFReport(precision=precision, recall=recall, f1=f1, num_objects=n)


def single_truth_as_sets(
    dataset: TruthDiscoveryDataset, truths: Mapping[ObjectId, Value]
) -> Dict[ObjectId, Set[Value]]:
    """Convert single-truth estimates to multi-truth via candidate closure.

    This is the paper's rule for putting single-truth algorithms into Table 5:
    "we treat the ancestors of v and v itself as the multi-truths of v".
    """
    return {
        obj: closure_within_candidates(dataset, obj, value)
        for obj, value in truths.items()
    }

"""Statistical significance helpers for algorithm comparisons.

The paper reports point estimates; for a reproduction on synthetic data it is
useful to know whether "TDH beats X by 2 points" is noise or signal. This
module provides nonparametric bootstrap confidence intervals over objects and
a paired bootstrap test for the difference between two algorithms' accuracy
on the same dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from ..hierarchy.tree import Value
from .metrics import effective_truth


def _correctness_vector(
    dataset: TruthDiscoveryDataset,
    estimated: Mapping[ObjectId, Value],
    gold: Optional[Mapping[ObjectId, Value]] = None,
) -> np.ndarray:
    """Per-object 0/1 exact-correctness indicators, in a fixed object order."""
    gold = gold if gold is not None else dataset.gold
    hits = []
    for obj, gold_value in gold.items():
        if obj not in estimated:
            continue
        target = effective_truth(dataset, obj, gold_value)
        reference = target if target is not None else gold_value
        hits.append(1.0 if estimated[obj] == reference else 0.0)
    if not hits:
        raise ValueError("no overlapping objects between estimates and gold")
    return np.asarray(hits)


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap point estimate with a two-sided confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def accuracy_interval(
    dataset: TruthDiscoveryDataset,
    estimated: Mapping[ObjectId, Value],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapInterval:
    """Bootstrap CI for exact accuracy, resampling objects with replacement."""
    hits = _correctness_vector(dataset, estimated)
    rng = np.random.default_rng(seed)
    n = len(hits)
    samples = rng.integers(0, n, size=(n_resamples, n))
    means = hits[samples].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(hits.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def paired_accuracy_difference(
    dataset: TruthDiscoveryDataset,
    estimated_a: Mapping[ObjectId, Value],
    estimated_b: Mapping[ObjectId, Value],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapInterval:
    """Paired bootstrap CI for ``accuracy(A) - accuracy(B)``.

    Pairing over the same objects removes between-object variance, so the
    interval excludes 0 exactly when the two algorithms genuinely differ.
    Objects missing from either estimate are dropped.
    """
    gold = dataset.gold
    shared = {
        obj: gold[obj]
        for obj in gold
        if obj in estimated_a and obj in estimated_b
    }
    hits_a = _correctness_vector(dataset, estimated_a, gold=shared)
    hits_b = _correctness_vector(dataset, estimated_b, gold=shared)
    differences = hits_a - hits_b
    rng = np.random.default_rng(seed)
    n = len(differences)
    samples = rng.integers(0, n, size=(n_resamples, n))
    means = differences[samples].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(differences.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )

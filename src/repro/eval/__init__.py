"""Evaluation: the paper's quality measures for all experiment families."""

from .metrics import EvaluationReport, effective_truth, evaluate, source_accuracy
from .multitruth import (
    PRFReport,
    ancestor_closure,
    closure_within_candidates,
    evaluate_multitruth,
    single_truth_as_sets,
)
from .numeric import NumericReport, evaluate_numeric
from .significance import (
    BootstrapInterval,
    accuracy_interval,
    paired_accuracy_difference,
)

__all__ = [
    "evaluate",
    "EvaluationReport",
    "effective_truth",
    "source_accuracy",
    "evaluate_multitruth",
    "PRFReport",
    "ancestor_closure",
    "closure_within_candidates",
    "single_truth_as_sets",
    "evaluate_numeric",
    "NumericReport",
    "BootstrapInterval",
    "accuracy_interval",
    "paired_accuracy_difference",
]

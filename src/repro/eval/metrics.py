"""Quality measures from Section 5: Accuracy, GenAccuracy, AvgDistance.

The gold truth ``t_o`` may be absent from the candidate set ``Vo``; the paper
then substitutes "the most specific candidate value among the ancestors of
the truth" — implemented by :func:`effective_truth`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..data.model import ObjectId, TruthDiscoveryDataset
from ..hierarchy.tree import Hierarchy, Value


def effective_truth(
    dataset: TruthDiscoveryDataset, obj: ObjectId, gold_value: Value
) -> Optional[Value]:
    """Gold truth projected onto the candidate set per the paper's convention.

    Returns ``gold_value`` if it is a candidate, otherwise the most specific
    candidate ancestor of it, otherwise ``None`` (object is unevaluable: no
    candidate is even a generalization of the truth — we keep it and count a
    miss, matching a fixed denominator of ``|O|``).
    """
    ctx = dataset.context(obj)
    if gold_value in ctx.index:
        return gold_value
    hierarchy = dataset.hierarchy
    best: Optional[Value] = None
    best_depth = -1
    for ancestor in hierarchy.ancestors(gold_value):
        if ancestor in ctx.index:
            depth = hierarchy.depth(ancestor)
            if depth > best_depth:
                best, best_depth = ancestor, depth
    return best


@dataclass(frozen=True)
class EvaluationReport:
    """The three Section-5 quality measures plus the evaluated object count."""

    accuracy: float
    gen_accuracy: float
    avg_distance: float
    num_objects: int

    def as_row(self) -> Dict[str, float]:
        """Row dict with the paper's column names."""
        return {
            "Accuracy": self.accuracy,
            "GenAccuracy": self.gen_accuracy,
            "AvgDistance": self.avg_distance,
        }


def evaluate(
    dataset: TruthDiscoveryDataset,
    estimated: Mapping[ObjectId, Value],
    gold: Optional[Mapping[ObjectId, Value]] = None,
) -> EvaluationReport:
    """Score estimated truths against the gold standard.

    * **Accuracy** — fraction of objects where the estimate equals the
      (effective) truth exactly.
    * **GenAccuracy** — fraction where the estimate is the truth or one of its
      ancestors (correct but possibly less specific).
    * **AvgDistance** — mean hierarchy-edge distance between estimate and
      truth; robust to the gold being *less* specific than the estimate.

    Objects without a gold value are skipped; objects whose gold value has no
    candidate projection count as misses with a distance measured from the
    original gold node.
    """
    gold = gold if gold is not None else dataset.gold
    hierarchy = dataset.hierarchy
    n = 0
    exact = 0
    generalized = 0
    total_distance = 0.0
    for obj, gold_value in gold.items():
        if obj not in estimated:
            continue
        n += 1
        estimate = estimated[obj]
        target = effective_truth(dataset, obj, gold_value)
        reference = target if target is not None else gold_value
        if estimate == reference:
            exact += 1
            generalized += 1
        elif hierarchy.is_ancestor(estimate, reference):
            generalized += 1
        total_distance += hierarchy.distance(estimate, reference)
    if n == 0:
        raise ValueError("no overlapping objects between estimates and gold")
    return EvaluationReport(
        accuracy=exact / n,
        gen_accuracy=generalized / n,
        avg_distance=total_distance / n,
        num_objects=n,
    )


def source_accuracy(
    dataset: TruthDiscoveryDataset,
    source,
    gold: Optional[Mapping[ObjectId, Value]] = None,
) -> Dict[str, float]:
    """Per-source exact and generalized accuracy (Figure 1 / Figure 5).

    ``accuracy`` is the fraction of the source's claims that match the
    effective truth exactly; ``gen_accuracy`` also counts claims that are
    ancestors of it (hierarchically correct).
    """
    gold = gold if gold is not None else dataset.gold
    hierarchy = dataset.hierarchy
    n = 0
    exact = 0
    generalized = 0
    for obj in dataset.objects_of_source(source):
        if obj not in gold:
            continue
        claimed = dataset.records_for(obj).get(source)
        if claimed is None:
            continue
        target = effective_truth(dataset, obj, gold[obj])
        reference = target if target is not None else gold[obj]
        n += 1
        if claimed == reference:
            exact += 1
            generalized += 1
        elif hierarchy.is_ancestor(claimed, reference):
            generalized += 1
    if n == 0:
        return {"claims": 0, "accuracy": 0.0, "gen_accuracy": 0.0}
    return {"claims": n, "accuracy": exact / n, "gen_accuracy": generalized / n}

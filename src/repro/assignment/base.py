"""Common interface for crowdsourcing task-assignment policies.

An assigner inspects the current inference result and proposes, for each
available worker, the ``k`` objects whose answers are expected to help the
most. Following the paper (Section 4.3), an object is assigned to **at most
one worker per round** — a single answer often suffices, and the object can
be reassigned next round if not.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, List, Sequence

from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..inference.base import InferenceResult

Assignment = Dict[WorkerId, List[ObjectId]]


class TaskAssigner(abc.ABC):
    """Base class for task-assignment policies."""

    name: str = "base"

    @abc.abstractmethod
    def assign(
        self,
        dataset: TruthDiscoveryDataset,
        result: InferenceResult,
        workers: Sequence[WorkerId],
        k: int,
    ) -> Assignment:
        """Propose up to ``k`` objects per worker (no object twice per round)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def worker_accuracy(result: InferenceResult, worker: WorkerId, default: float = 0.7) -> float:
    """Best-effort exact-answer probability for ``worker`` from any result.

    Dispatches on the attributes different algorithms expose: TDH's ``psi``,
    DOCS's per-domain accuracies, LCA's honesty, ACCU's source accuracy.
    Falls back to ``default`` for unseen workers.
    """
    psi = getattr(result, "psi", None)
    if psi is not None and worker in psi:
        return float(psi[worker][0])
    domain_accuracy = getattr(result, "domain_accuracy", None)
    if domain_accuracy is not None:
        per_worker = [
            acc for (claimant, _domain), acc in domain_accuracy.items()
            if claimant == ("worker", worker) or claimant == worker
        ]
        if per_worker:
            return float(sum(per_worker) / len(per_worker))
    honesty = getattr(result, "honesty", None)
    if honesty is not None:
        key = ("worker", worker)
        if key in honesty:
            return float(honesty[key])
        if worker in honesty:
            return float(honesty[worker])
    source_accuracy = getattr(result, "source_accuracy", None)
    if source_accuracy is not None:
        key = ("worker", worker)
        if key in source_accuracy:
            return float(source_accuracy[key])
    return default


def eligible_objects(
    dataset: TruthDiscoveryDataset, worker: WorkerId
) -> List[ObjectId]:
    """Objects the worker has not answered yet."""
    answered = set(dataset.objects_of_worker(worker))
    return [obj for obj in dataset.objects if obj not in answered]

"""AskIt! — per-worker uncertainty-based task assignment (Boim et al., ICDE 2012).

AskIt selects, for each worker, the objects whose answer that worker has not
yet given and whose current value is most uncertain, using the *entropy-like
uncertainty of the remaining candidates* per worker. The paper excludes AskIt
from its experiments because QASCA dominates it; we include it as an optional
extra baseline (and to let users verify that claim themselves).

The practical difference from :class:`MaxEntropyAssigner` is the per-worker
view: AskIt spreads the globally uncertain objects so that each worker gets
the most uncertain objects *they* can still answer, rather than a round-robin
split of one global ranking.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..inference.base import InferenceResult
from .base import Assignment, TaskAssigner
from .entropy import confidence_entropy


class AskItAssigner(TaskAssigner):
    """Per-worker uncertainty sampling with optional duplicate assignment.

    Parameters
    ----------
    allow_duplicates:
        AskIt's original formulation may give the same question to several
        workers in one batch. Defaults to ``False`` to match the paper's
        one-worker-per-object-per-round protocol.
    """

    name = "ASKIT"

    def __init__(self, allow_duplicates: bool = False) -> None:
        self.allow_duplicates = allow_duplicates

    def assign(
        self,
        dataset: TruthDiscoveryDataset,
        result: InferenceResult,
        workers: Sequence[WorkerId],
        k: int,
    ) -> Assignment:
        scored: List[Tuple[float, int, ObjectId]] = [
            (confidence_entropy(vec), i, obj)
            for i, (obj, vec) in enumerate(result.confidences.items())
        ]
        scored.sort(key=lambda t: (-t[0], t[1]))
        out: Dict[WorkerId, List[ObjectId]] = {w: [] for w in workers}
        taken: set = set()
        for worker in workers:
            answered = set(dataset.objects_of_worker(worker))
            for _, _, obj in scored:
                if len(out[worker]) >= k:
                    break
                if obj in answered:
                    continue
                if not self.allow_duplicates and obj in taken:
                    continue
                out[worker].append(obj)
                taken.add(obj)
        return out

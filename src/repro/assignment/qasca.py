"""QASCA-style task assignment (Zheng et al., SIGMOD 2015).

QASCA also targets accuracy improvement, but (a) it estimates the posterior
confidence from a *sampled* answer instead of the expectation and (b) it
ignores how many claims have already been collected — the two drawbacks the
paper's Section 4.1 analysis (and Figure 7) call out. We reproduce both:
the improvement is ``max_v mu_{o,v|v'} - max_v mu_{o,v}`` with
``mu_{o,v|v'} ∝ mu_{o,v} * P(v' | truth=v)`` (a pure Bayes update with no
claim-count damping), for a sampled ``v'``.

Like EAI, the assigner ships two engines behind ``use_columnar`` (``"auto"``
by default). The reference engine normalises ``result.confidences[obj]`` and
rebuilds the worker likelihood matrix from scratch on every
``(worker, object)`` evaluation — the shape the formulas are written in,
kept as the parity oracle. The columnar engine consumes the TDH EM state as
one flat slot array: the per-object confidence normalisation runs once per
round instead of once per evaluation, the worker accuracies are resolved
once per round, and the ``(accuracy, |Vo|)`` likelihood matrices are cached
(QASCA's likelihood depends on nothing else, and candidate-set sizes repeat
heavily). Every per-evaluation operation — including the sampled
``rng.choice`` — mirrors the reference arithmetic exactly, so the two
engines draw identical samples and produce **identical** assignments
(enforced by the QASCA cases in ``tests/test_columnar_parity.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.columnar import resolve_engine
from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..inference.base import InferenceResult
from ..inference.tdh import TDHResult
from .base import Assignment, TaskAssigner, worker_accuracy


class _ColumnarQascaState:
    """Per-round flat view of the TDH EM state for the quality measure.

    ``norm`` holds each object's normalised confidence slice (the reference
    path recomputes ``mu / mu.sum()`` on every evaluation; one pass per
    round here — same buffer, same operations, bitwise-equal values) and
    ``accuracy`` the per-worker clipped exact-answer probabilities.
    """

    def __init__(self, result: TDHResult, col, mu: np.ndarray) -> None:
        self.result = result
        self.index = col.object_index
        offsets = col.value_offsets
        self.norm: List[np.ndarray] = []
        for oid in range(col.n_objects):
            sl = mu[offsets[oid] : offsets[oid + 1]]
            total = sl.sum()
            self.norm.append(
                sl / total if total > 0 else np.full(len(sl), 1.0 / len(sl))
            )
        self.n_objects = max(col.n_objects, 1)
        self.accuracy: Dict[WorkerId, float] = {}

    def worker_accuracy(self, worker: WorkerId) -> float:
        acc = self.accuracy.get(worker)
        if acc is None:
            acc = self.accuracy[worker] = min(
                max(worker_accuracy(self.result, worker), 1e-3), 1 - 1e-3
            )
        return acc


class QascaAssigner(TaskAssigner):
    """Sampled-answer accuracy-improvement assignment.

    Parameters
    ----------
    seed:
        Seed for the per-round answer sampling (QASCA's estimate is sampling
        based; the seed keeps experiments reproducible).
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``, plus the CLI's
        ``"columnar"`` / ``"reference"``); see
        :func:`repro.data.columnar.resolve_engine`. The columnar engine
        activates only for a :class:`TDHResult` carrying fresh columnar EM
        state; anything else takes the reference path.
    """

    name = "QASCA"

    def __init__(self, seed: int = 0, use_columnar: Union[bool, str] = "auto") -> None:
        self._rng = np.random.default_rng(seed)
        self.use_columnar = use_columnar
        self._state: Optional[_ColumnarQascaState] = None
        # (accuracy, n) -> the worker likelihood matrix; never mutated after
        # construction, so sharing across evaluations and rounds is safe.
        self._likelihood_cache: Dict[Tuple[float, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # columnar state
    # ------------------------------------------------------------------
    def _activate_state(
        self, dataset: TruthDiscoveryDataset, result: InferenceResult
    ) -> Optional[_ColumnarQascaState]:
        """Build (or refuse) the flat-array state for this round.

        Returns ``None`` — the reference path — unless the engine resolves
        columnar *and* the result is a columnar TDH fit of this dataset at
        its current version (QASCA only needs the confidences, but a stale
        or foreign flat state could disagree with ``result.confidences``).
        """
        self._state = None
        if not resolve_engine(self.use_columnar, dataset):
            return None
        if not isinstance(result, TDHResult):
            return None
        if getattr(result, "dataset", None) is not dataset:
            return None
        flat = getattr(result, "columnar_state", None)
        if flat is None or flat[0].version != getattr(dataset, "_version", 0):
            return None
        col, mu = flat[0], flat[1]
        self._state = _ColumnarQascaState(result, col, mu)
        return self._state

    def _state_for(self, result: InferenceResult) -> Optional[_ColumnarQascaState]:
        state = self._state
        return state if state is not None and state.result is result else None

    def _likelihood(self, accuracy: float, n: int) -> np.ndarray:
        """The ``(n, n)`` answer likelihood for a worker of this accuracy:
        ``accuracy`` on the diagonal, uniform miss mass elsewhere — exactly
        the matrix the reference path builds per evaluation."""
        key = (accuracy, n)
        matrix = self._likelihood_cache.get(key)
        if matrix is None:
            matrix = np.full((n, n), (1.0 - accuracy) / (n - 1))
            np.fill_diagonal(matrix, accuracy)
            self._likelihood_cache[key] = matrix
        return matrix

    # ------------------------------------------------------------------
    # quality measure
    # ------------------------------------------------------------------
    def improvement(
        self,
        dataset: TruthDiscoveryDataset,
        result: InferenceResult,
        obj: ObjectId,
        worker: WorkerId,
    ) -> float:
        """Estimated accuracy gain from asking ``worker`` about ``obj``."""
        state = self._state_for(result)
        if state is not None:
            return self._improvement_columnar(state, obj, worker)
        mu = np.asarray(result.confidences[obj], dtype=float)
        total = mu.sum()
        mu = mu / total if total > 0 else np.full(len(mu), 1.0 / len(mu))
        n = len(mu)
        accuracy = min(max(worker_accuracy(result, worker), 1e-3), 1 - 1e-3)

        # Sample the hypothetical answer from the predictive distribution.
        if n == 1:
            return 0.0
        likelihood = np.full((n, n), (1.0 - accuracy) / (n - 1))
        np.fill_diagonal(likelihood, accuracy)
        predictive = likelihood @ mu
        predictive = predictive / predictive.sum()
        sampled = int(self._rng.choice(n, p=predictive))

        posterior = mu * likelihood[sampled]
        z = posterior.sum()
        if z <= 0:
            return 0.0
        posterior /= z
        n_objects = max(len(result.confidences), 1)
        return (float(posterior.max()) - float(mu.max())) / n_objects

    def _improvement_columnar(
        self, state: _ColumnarQascaState, obj: ObjectId, worker: WorkerId
    ) -> float:
        """The reference arithmetic over the precomputed flat state: same
        normalised ``mu``, same likelihood values, same rng draw — the only
        difference is that the per-round invariants are hoisted."""
        mu = state.norm[state.index[obj]]
        n = len(mu)
        if n == 1:
            return 0.0
        likelihood = self._likelihood(state.worker_accuracy(worker), n)
        predictive = likelihood @ mu
        predictive = predictive / predictive.sum()
        sampled = int(self._rng.choice(n, p=predictive))

        posterior = mu * likelihood[sampled]
        z = posterior.sum()
        if z <= 0:
            return 0.0
        posterior = posterior / z
        return (float(posterior.max()) - float(mu.max())) / state.n_objects

    def assign(
        self,
        dataset: TruthDiscoveryDataset,
        result: InferenceResult,
        workers: Sequence[WorkerId],
        k: int,
    ) -> Assignment:
        self._activate_state(dataset, result)
        objects = list(result.confidences)
        assigned: set = set()
        out: Dict[WorkerId, List[ObjectId]] = {w: [] for w in workers}
        for worker in workers:
            answered = set(dataset.objects_of_worker(worker))
            scored: List[Tuple[float, int, ObjectId]] = []
            for i, obj in enumerate(objects):
                if obj in assigned or obj in answered:
                    continue
                scored.append((self.improvement(dataset, result, obj, worker), i, obj))
            scored.sort(key=lambda t: (-t[0], t[1]))
            for _, _, obj in scored[:k]:
                out[worker].append(obj)
                assigned.add(obj)
        return out

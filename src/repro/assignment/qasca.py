"""QASCA-style task assignment (Zheng et al., SIGMOD 2015).

QASCA also targets accuracy improvement, but (a) it estimates the posterior
confidence from a *sampled* answer instead of the expectation and (b) it
ignores how many claims have already been collected — the two drawbacks the
paper's Section 4.1 analysis (and Figure 7) call out. We reproduce both:
the improvement is ``max_v mu_{o,v|v'} - max_v mu_{o,v}`` with
``mu_{o,v|v'} ∝ mu_{o,v} * P(v' | truth=v)`` (a pure Bayes update with no
claim-count damping), for a sampled ``v'``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..inference.base import InferenceResult
from .base import Assignment, TaskAssigner, worker_accuracy


class QascaAssigner(TaskAssigner):
    """Sampled-answer accuracy-improvement assignment.

    Parameters
    ----------
    seed:
        Seed for the per-round answer sampling (QASCA's estimate is sampling
        based; the seed keeps experiments reproducible).
    """

    name = "QASCA"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def improvement(
        self,
        dataset: TruthDiscoveryDataset,
        result: InferenceResult,
        obj: ObjectId,
        worker: WorkerId,
    ) -> float:
        """Estimated accuracy gain from asking ``worker`` about ``obj``."""
        mu = np.asarray(result.confidences[obj], dtype=float)
        total = mu.sum()
        mu = mu / total if total > 0 else np.full(len(mu), 1.0 / len(mu))
        n = len(mu)
        accuracy = min(max(worker_accuracy(result, worker), 1e-3), 1 - 1e-3)

        # Sample the hypothetical answer from the predictive distribution.
        if n == 1:
            return 0.0
        likelihood = np.full((n, n), (1.0 - accuracy) / (n - 1))
        np.fill_diagonal(likelihood, accuracy)
        predictive = likelihood @ mu
        predictive = predictive / predictive.sum()
        sampled = int(self._rng.choice(n, p=predictive))

        posterior = mu * likelihood[sampled]
        z = posterior.sum()
        if z <= 0:
            return 0.0
        posterior /= z
        n_objects = max(len(result.confidences), 1)
        return (float(posterior.max()) - float(mu.max())) / n_objects

    def assign(
        self,
        dataset: TruthDiscoveryDataset,
        result: InferenceResult,
        workers: Sequence[WorkerId],
        k: int,
    ) -> Assignment:
        objects = list(result.confidences)
        assigned: set = set()
        out: Dict[WorkerId, List[ObjectId]] = {w: [] for w in workers}
        for worker in workers:
            answered = set(dataset.objects_of_worker(worker))
            scored: List[Tuple[float, int, ObjectId]] = []
            for i, obj in enumerate(objects):
                if obj in assigned or obj in answered:
                    continue
                scored.append((self.improvement(dataset, result, obj, worker), i, obj))
            scored.sort(key=lambda t: (-t[0], t[1]))
            for _, _, obj in scored[:k]:
                out[worker].append(obj)
                assigned.add(obj)
        return out

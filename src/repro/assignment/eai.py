"""EAI — Expected Accuracy Improvement task assignment (paper Section 4).

For a worker ``w`` and object ``o`` the quality measure is

``EAI(w, o) = ( E[max_v mu_{o,v|w}] - max_v mu_{o,v} ) / |O|``  (Eq. 14)

where the expectation runs over the worker's possible answers (Eq. 15) and
the conditional confidence ``mu_{o,v | v_w = v'}`` comes from a *single
incremental EM step* (Eq. 16-18) that reuses the numerators ``N_{o,v}`` and
denominators ``D_o`` of the last full EM — claims already collected damp the
confidence shift, the paper's key correction to QASCA.

Assignment (Algorithm 1) walks objects in decreasing order of the upper bound

``UEAI(o) = (1 - max_v mu_{o,v}) / (|O| (D_o + 1))``  (Lemma 4.1)

and stops as soon as no remaining object can beat any worker's current
worst assigned task — the pruning evaluated in Figure 13.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..inference.tdh import TDHResult
from .base import Assignment, TaskAssigner


class EAIAssigner(TaskAssigner):
    """The paper's task-assignment algorithm for TDH.

    Parameters
    ----------
    use_pruning:
        Enable the UEAI upper-bound early termination (Lemma 4.1). Disabling
        it computes ``EAI`` for every remaining (worker, object) pair — used
        by the Figure 13 experiment; the resulting assignment is identical.
    default_psi:
        Trustworthiness prior for workers that have not answered yet.
    """

    name = "EAI"

    def __init__(
        self,
        use_pruning: bool = True,
        default_psi: Tuple[float, float, float] = (0.6, 0.2, 0.2),
    ) -> None:
        self.use_pruning = use_pruning
        self.default_psi = np.asarray(default_psi, dtype=float)
        self.eai_evaluations = 0  # instrumentation for the Fig 13 bench

    # ------------------------------------------------------------------
    # quality measure
    # ------------------------------------------------------------------
    def conditional_confidence(
        self, result: TDHResult, obj: ObjectId, worker_psi: np.ndarray, answer_pos: int
    ) -> np.ndarray:
        """``mu_{o, . | v_w = v'}`` by one incremental EM step (Eq. 18)."""
        structure = result.structures.get(obj)
        mu = result.confidences[obj]
        likelihood = structure.worker_likelihood_row(answer_pos, worker_psi)
        joint = likelihood * mu
        z = joint.sum()
        f = joint / z if z > 0 else mu
        numerator = result.numerators[obj] + f
        return numerator / (result.denominators[obj] + 1.0)

    def answer_distribution(
        self, result: TDHResult, obj: ObjectId, worker_psi: np.ndarray
    ) -> np.ndarray:
        """``P(v_w = v' | psi_w, mu_o)`` for every candidate ``v'`` (Eq. 6)."""
        structure = result.structures.get(obj)
        mu = result.confidences[obj]
        likelihood = structure.worker_likelihood(worker_psi)  # rows = answers
        dist = likelihood @ mu
        total = dist.sum()
        return dist / total if total > 0 else np.full(len(mu), 1.0 / len(mu))

    def eai(
        self,
        result: TDHResult,
        obj: ObjectId,
        worker_psi: np.ndarray,
        n_objects: Optional[int] = None,
    ) -> float:
        """``EAI(w, o)`` per Eq. (14)-(15)."""
        self.eai_evaluations += 1
        n_objects = n_objects if n_objects is not None else len(result.confidences)
        mu = result.confidences[obj]
        current_best = float(mu.max())
        answer_probs = self.answer_distribution(result, obj, worker_psi)
        expected_best = 0.0
        for answer_pos, p_answer in enumerate(answer_probs):
            if p_answer <= 0:
                continue
            conditional = self.conditional_confidence(result, obj, worker_psi, answer_pos)
            expected_best += float(p_answer) * float(conditional.max())
        return (expected_best - current_best) / n_objects

    @staticmethod
    def ueai(result: TDHResult, obj: ObjectId, n_objects: Optional[int] = None) -> float:
        """Upper bound ``UEAI(o)`` of Lemma 4.1."""
        n_objects = n_objects if n_objects is not None else len(result.confidences)
        mu = result.confidences[obj]
        return (1.0 - float(mu.max())) / (n_objects * (result.denominators[obj] + 1.0))

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def assign(
        self,
        dataset: TruthDiscoveryDataset,
        result: TDHResult,
        workers: Sequence[WorkerId],
        k: int,
    ) -> Assignment:
        if not isinstance(result, TDHResult):
            raise TypeError("EAI requires a TDHResult (it reuses the EM state)")
        self.eai_evaluations = 0
        objects = list(result.confidences)
        n_objects = len(objects)
        if not workers or k <= 0 or n_objects == 0:
            return {w: [] for w in workers}

        psi_by_worker = {w: result.worker_psi(w, self.default_psi) for w in workers}
        # Workers in decreasing order of psi_{w,1} (line 3 of Algorithm 1).
        ordered_workers = sorted(
            workers, key=lambda w: float(psi_by_worker[w][0]), reverse=True
        )
        answered = {
            w: set(dataset.objects_of_worker(w)) for w in ordered_workers
        }

        # Max-heap of UEAI over objects (line 1-2); heapq is a min-heap so we
        # negate. Tie-break on insertion order for determinism.
        ub_heap: List[Tuple[float, int, ObjectId]] = [
            (-self.ueai(result, obj, n_objects), i, obj)
            for i, obj in enumerate(objects)
        ]
        heapq.heapify(ub_heap)

        # Per-worker min-heaps of assigned (EAI, seq, object).
        eai_heaps: Dict[WorkerId, List[Tuple[float, int, ObjectId]]] = {
            w: [] for w in ordered_workers
        }
        seq = 0

        def all_heaps_full() -> bool:
            return all(len(eai_heaps[w]) >= k for w in ordered_workers)

        def global_min_eai() -> float:
            return min(eai_heaps[w][0][0] for w in ordered_workers)

        while ub_heap:
            neg_ub, _, obj = heapq.heappop(ub_heap)
            upper = -neg_ub
            if self.use_pruning and all_heaps_full() and global_min_eai() >= upper:
                break  # no remaining object can beat any assigned one (line 8-9)

            # Try to place `obj`, cascading displaced objects to later workers.
            pending: Optional[ObjectId] = obj
            pending_eai: Optional[float] = None  # not yet computed for a worker
            for worker in ordered_workers:
                if pending is None:
                    break
                if pending in answered[worker]:
                    continue
                heap = eai_heaps[worker]
                if (
                    self.use_pruning
                    and len(heap) >= k
                    and pending_eai is None
                    and heap[0][0] >= upper
                ):
                    # This worker's worst task already beats the bound; the
                    # object cannot enter this heap (line 11-12).
                    continue
                value = self.eai(result, pending, psi_by_worker[worker], n_objects)
                seq += 1
                if len(heap) < k:
                    heapq.heappush(heap, (value, seq, pending))
                    pending = None
                elif value > heap[0][0]:
                    _, _, displaced = heapq.heapreplace(heap, (value, seq, pending))
                    pending = displaced  # reassign the evicted object (line 17)
                    pending_eai = None
                    upper = self.ueai(result, pending, n_objects)
                # else: try the next worker with the same object

        return {
            w: [obj for _, _, obj in sorted(eai_heaps[w], reverse=True)]
            for w in ordered_workers
        }

"""EAI — Expected Accuracy Improvement task assignment (paper Section 4).

For a worker ``w`` and object ``o`` the quality measure is

``EAI(w, o) = ( E[max_v mu_{o,v|w}] - max_v mu_{o,v} ) / |O|``  (Eq. 14)

where the expectation runs over the worker's possible answers (Eq. 15) and
the conditional confidence ``mu_{o,v | v_w = v'}`` comes from a *single
incremental EM step* (Eq. 16-18) that reuses the numerators ``N_{o,v}`` and
denominators ``D_o`` of the last full EM — claims already collected damp the
confidence shift, the paper's key correction to QASCA.

Assignment (Algorithm 1) walks objects in decreasing order of the upper bound

``UEAI(o) = (1 - max_v mu_{o,v}) / (|O| (D_o + 1))``  (Lemma 4.1)

and stops as soon as no remaining object can beat any worker's current
worst assigned task — the pruning evaluated in Figure 13.

Like the inference algorithms, the assigner ships two engines behind
``use_columnar`` (``"auto"`` by default). The reference engine evaluates the
per-object :class:`~repro.inference._structures.ObjectStructure` likelihood
matrices — the shape the equations are written in, kept as the parity
oracle. The columnar engine consumes the TDH EM state directly as flat slot
arrays (``mu``, ``N_{o,v}``, ``D_o``) plus precomputed worker-likelihood
case weights over the encoding's candidate x candidate cross-join
(:attr:`~repro.data.columnar.ColumnarClaims.slot_pairs`), so a whole
crowdsourcing round never touches a per-object dict. Algorithm 1's control
flow — heap walk, pruning, eviction cascade, tie-breaks — is shared by both
engines, and the per-pair arithmetic mirrors the reference operation by
operation, so the two engines produce *identical* assignments (enforced by
``tests/test_columnar_parity.py`` and the crowd-loop regression test).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.columnar import ColumnarClaims, resolve_engine
from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..inference.tdh import TDHResult
from .base import Assignment, TaskAssigner


class _ColumnarEaiState:
    """Flat-array view of everything one ``assign()`` round needs.

    ``mu`` / ``numer`` are ``(n_slots,)`` slices of the TDH EM state,
    ``denom`` / ``mu_max`` / ``ueai`` are per-object, and ``case2`` /
    ``case3`` are the worker-likelihood case weights per candidate pair
    (see :func:`_worker_case_arrays`). Built by
    :meth:`EAIAssigner._activate_state`; dropped when the result changes.
    """

    def __init__(
        self,
        result: TDHResult,
        col: ColumnarClaims,
        mu: np.ndarray,
        numer: np.ndarray,
        denom: np.ndarray,
        case2: np.ndarray,
        case3: np.ndarray,
    ) -> None:
        self.result = result
        self.col = col
        self.mu = mu
        self.numer = numer
        self.denom = denom
        self.case2 = case2
        self.case3 = case3
        self.offsets = col.value_offsets
        self.pair_offsets = col.slot_pairs.offsets
        self.sizes = col.sizes
        self.index = col.object_index
        # max_v mu_{o,v} per object; max is order-independent, so reduceat
        # matches the reference's per-object ``mu.max()`` bit for bit.
        self.mu_max = (
            np.maximum.reduceat(mu, col.value_offsets[:-1])
            if col.n_objects
            else np.zeros(0)
        )

    def likelihood(self, oid: int, psi: np.ndarray) -> np.ndarray:
        """``L[u, v] = P(answer u | truth v, psi)`` as an ``(n, n)`` matrix.

        Mirrors :meth:`ObjectStructure.worker_likelihood_row` arithmetic
        (``psi1 * case2 + psi2 * case3`` then ``+= psi0`` on the diagonal) so
        both engines produce bitwise-identical likelihoods.
        """
        p0, p1 = self.pair_offsets[oid], self.pair_offsets[oid + 1]
        n = int(self.sizes[oid])
        matrix = (psi[1] * self.case2[p0:p1] + psi[2] * self.case3[p0:p1]).reshape(n, n)
        diag = np.arange(n)
        matrix[diag, diag] += psi[0]
        return matrix

    def likelihood_row(self, oid: int, answer_pos: int, psi: np.ndarray) -> np.ndarray:
        """Row ``u = answer_pos`` of :meth:`likelihood`, in O(|Vo|).

        The flat counterpart of :meth:`ObjectStructure.worker_likelihood_row`
        — same operations, so the single-row Eq. (18) path stays bitwise
        equal to the reference without materialising the full matrix.
        """
        n = int(self.sizes[oid])
        start = self.pair_offsets[oid] + answer_pos * n
        row = psi[1] * self.case2[start : start + n] + psi[2] * self.case3[start : start + n]
        row[answer_pos] += psi[0]
        return row


def _worker_case_arrays(
    col: ColumnarClaims,
    use_hierarchy: bool = True,
    use_popularity: bool = True,
    collapse_flat_objects: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Worker-likelihood case weights per candidate pair ``(u, v)``.

    The flat counterpart of :class:`ObjectStructure`'s ``worker_case2`` /
    ``worker_case3`` matrices (Eq. 3/4 with the ``Pop2``/``Pop3`` popularity
    terms), evaluated over the encoding's candidate x candidate cross-join
    instead of per-object dicts — one array pass for the whole dataset. The
    ablation flags are honoured exactly as in
    :func:`repro.inference._structures.build_structure`; keep the formulas in
    lock-step (the EAI parity tests will catch any drift).

    Because the weights depend only on records (candidate sets, ancestor
    structure, source-claim counts), they survive answer-only mutations —
    the assigner caches them per ``records_version`` across rounds.
    """
    pairs = col.slot_pairs
    n_pairs = len(pairs.pair_obj)
    n = col.sizes.astype(np.float64)[pairs.pair_obj]
    exact = pairs.u_slot == pairs.v_slot
    exact_f = exact.astype(np.float64)

    if use_hierarchy:
        hier = col.hierarchy
        anc = hier.is_ancestor_vid(
            col.slot_vid[pairs.u_slot], col.slot_vid[pairs.v_slot]
        )
        gsize = hier.slot_gsize[pairs.v_slot].astype(np.float64)
        hflag_obj = (
            np.ones(col.n_objects, dtype=bool)
            if not collapse_flat_objects
            else hier.obj_has_hierarchy
        )
    else:
        anc = np.zeros(n_pairs, dtype=bool)
        gsize = np.zeros(n_pairs, dtype=np.float64)
        hflag_obj = np.zeros(col.n_objects, dtype=bool)
    hflag = hflag_obj[pairs.pair_obj]
    anc_f = anc.astype(np.float64)
    case3_f = (~exact & ~anc).astype(np.float64)

    if not use_popularity:
        # Eq. (1)/(2) shape: uniform over Go(v) / the remaining candidates.
        src2_h = np.where(gsize > 0, anc_f / np.maximum(gsize, 1.0), 0.0)
        wrong = n - gsize - 1.0
        src3_h = np.where(wrong > 0, case3_f / np.maximum(wrong, 1.0), 0.0)
        src3_flat = np.where(n > 1, case3_f / np.maximum(n - 1.0, 1.0), 0.0)
        return (
            np.where(hflag, src2_h, exact_f),
            np.where(hflag, src3_h, src3_flat),
        )

    # Eq. (3): Pop2/Pop3 redistribute the case mass by source-claim counts.
    counts, pop2_slot, pop3_slot = col.popularity_denominators(use_hierarchy)
    u_counts = counts[pairs.u_slot]
    pop2 = pop2_slot[pairs.v_slot]
    pop3 = pop3_slot[pairs.v_slot]
    wrk2_h = np.where(pop2 > 0, anc_f * u_counts / np.maximum(pop2, 1.0), 0.0)
    worker_case2 = np.where(hflag, wrk2_h, exact_f)
    worker_case3 = np.where(pop3 > 0, case3_f * u_counts / np.maximum(pop3, 1.0), 0.0)
    return worker_case2, worker_case3


class EAIAssigner(TaskAssigner):
    """The paper's task-assignment algorithm for TDH.

    Parameters
    ----------
    use_pruning:
        Enable the UEAI upper-bound early termination (Lemma 4.1). Disabling
        it computes ``EAI`` for every remaining (worker, object) pair — used
        by the Figure 13 experiment; the resulting assignment is identical.
    default_psi:
        Trustworthiness prior for workers that have not answered yet.
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``, plus the CLI's
        ``"columnar"`` / ``"reference"``); see
        :func:`repro.data.columnar.resolve_engine`. The columnar engine
        evaluates the quality measure over flat slot arrays; the reference
        engine walks the per-object ``ObjectStructure`` matrices. Both
        produce identical assignments.
    """

    name = "EAI"

    def __init__(
        self,
        use_pruning: bool = True,
        default_psi: Tuple[float, float, float] = (0.6, 0.2, 0.2),
        use_columnar: Union[bool, str] = "auto",
    ) -> None:
        self.use_pruning = use_pruning
        self.default_psi = np.asarray(default_psi, dtype=float)
        self.use_columnar = use_columnar
        self.eai_evaluations = 0  # instrumentation for the Fig 13 bench
        self._state: Optional[_ColumnarEaiState] = None
        # (slot_pairs identity, records_version, ablation flags) -> case
        # arrays; the strong slot_pairs reference keeps the id stable.
        self._case_cache: Optional[Tuple[tuple, object, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # columnar state
    # ------------------------------------------------------------------
    def _activate_state(
        self, dataset: TruthDiscoveryDataset, result: TDHResult
    ) -> Optional[_ColumnarEaiState]:
        """Build (or refuse) the flat-array state for this round.

        Returns ``None`` — meaning the reference path runs — when the engine
        resolves to the dict loops, or when the result's layout no longer
        matches the dataset's current encoding (e.g. records were added
        between ``fit`` and ``assign``). While a state is active, the public
        quality-measure methods dispatch to the vectorized path for *this*
        result; any other result falls back to the reference path.
        """
        self._state = None
        if not resolve_engine(self.use_columnar, dataset):
            return None
        if getattr(result, "dataset", None) is not dataset:
            # Mutation counters only order mutations of one dataset object;
            # across clones they can coincide while the claims diverge, so a
            # foreign result always takes the reference path.
            return None
        if getattr(dataset, "_records_version", 0) != getattr(
            result, "records_version", None
        ):
            # Records landed between fit and assign: the Pop2/Pop3 weights
            # (and possibly the slot layout) no longer describe the result's
            # world. The reference path keeps the fit-time StructureCache,
            # so it remains the consistent engine here. (Checked before
            # touching dataset.columnar() so refusal never builds arrays.)
            return None
        col = dataset.columnar()

        flat = getattr(result, "columnar_state", None)
        if flat is not None and flat[0].version == getattr(dataset, "_version", 0):
            # Hot path: the result came from the columnar TDH fit on this
            # very dataset state — its flat EM arrays are already aligned.
            col, mu, numer, denom = flat
        else:
            # Reference-fit result (or layout drift): rebuild the flat view
            # from the dicts, refusing when the slot layout moved underneath.
            conf = result.confidences
            if list(conf) != col.objects:
                return None
            if any(
                len(conf[obj]) != int(size)
                for obj, size in zip(col.objects, col.sizes)
            ):
                return None
            mu = np.concatenate([conf[obj] for obj in col.objects])
            numer = np.concatenate([result.numerators[obj] for obj in col.objects])
            denom = np.asarray(
                [result.denominators[obj] for obj in col.objects], dtype=np.float64
            )

        cache = result.structures
        flags = (
            getattr(cache, "use_hierarchy", True),
            getattr(cache, "use_popularity", True),
            getattr(cache, "collapse_flat_objects", True),
        )
        pairs = col.slot_pairs
        key = (id(pairs), col.records_version, flags)
        if self._case_cache is not None and self._case_cache[0] == key:
            case2, case3 = self._case_cache[2], self._case_cache[3]
        else:
            case2, case3 = _worker_case_arrays(col, *flags)
            self._case_cache = (key, pairs, case2, case3)

        self._state = _ColumnarEaiState(result, col, mu, numer, denom, case2, case3)
        return self._state

    def _state_for(self, result: TDHResult) -> Optional[_ColumnarEaiState]:
        state = self._state
        return state if state is not None and state.result is result else None

    # ------------------------------------------------------------------
    # quality measure
    # ------------------------------------------------------------------
    def conditional_confidence(
        self, result: TDHResult, obj: ObjectId, worker_psi: np.ndarray, answer_pos: int
    ) -> np.ndarray:
        """``mu_{o, . | v_w = v'}`` by one incremental EM step (Eq. 18)."""
        state = self._state_for(result)
        if state is not None:
            oid = state.index[obj]
            start, end = state.offsets[oid], state.offsets[oid + 1]
            mu = state.mu[start:end]
            likelihood = state.likelihood_row(oid, answer_pos, worker_psi)
            joint = likelihood * mu
            z = joint.sum()
            f = joint / z if z > 0 else mu
            return (state.numer[start:end] + f) / (state.denom[oid] + 1.0)
        structure = result.structures.get(obj)
        mu = result.confidences[obj]
        likelihood = structure.worker_likelihood_row(answer_pos, worker_psi)
        joint = likelihood * mu
        z = joint.sum()
        f = joint / z if z > 0 else mu
        numerator = result.numerators[obj] + f
        return numerator / (result.denominators[obj] + 1.0)

    def answer_distribution(
        self, result: TDHResult, obj: ObjectId, worker_psi: np.ndarray
    ) -> np.ndarray:
        """``P(v_w = v' | psi_w, mu_o)`` for every candidate ``v'`` (Eq. 6)."""
        state = self._state_for(result)
        if state is not None:
            oid = state.index[obj]
            start, end = state.offsets[oid], state.offsets[oid + 1]
            mu = state.mu[start:end]
            dist = state.likelihood(oid, worker_psi) @ mu
            total = dist.sum()
            return dist / total if total > 0 else np.full(len(mu), 1.0 / len(mu))
        structure = result.structures.get(obj)
        mu = result.confidences[obj]
        likelihood = structure.worker_likelihood(worker_psi)  # rows = answers
        dist = likelihood @ mu
        total = dist.sum()
        return dist / total if total > 0 else np.full(len(mu), 1.0 / len(mu))

    def eai(
        self,
        result: TDHResult,
        obj: ObjectId,
        worker_psi: np.ndarray,
        n_objects: Optional[int] = None,
    ) -> float:
        """``EAI(w, o)`` per Eq. (14)-(15)."""
        self.eai_evaluations += 1
        n_objects = n_objects if n_objects is not None else len(result.confidences)
        state = self._state_for(result)
        if state is not None:
            return self._eai_columnar(state, state.index[obj], worker_psi, n_objects)
        mu = result.confidences[obj]
        current_best = float(mu.max())
        answer_probs = self.answer_distribution(result, obj, worker_psi)
        expected_best = 0.0
        for answer_pos, p_answer in enumerate(answer_probs):
            if p_answer <= 0:
                continue
            conditional = self.conditional_confidence(result, obj, worker_psi, answer_pos)
            expected_best += float(p_answer) * float(conditional.max())
        return (expected_best - current_best) / n_objects

    def _eai_columnar(
        self,
        state: _ColumnarEaiState,
        oid: int,
        worker_psi: np.ndarray,
        n_objects: int,
    ) -> float:
        """``EAI(w, o)`` with every per-answer conditional evaluated at once.

        The likelihood matrix, the answer distribution and all ``|Vo|``
        conditional confidences are slot-array operations; the only Python
        loop left is the final scalar expectation, which accumulates in the
        reference engine's exact order (and skip rule) so both engines agree
        bit for bit.
        """
        start, end = state.offsets[oid], state.offsets[oid + 1]
        mu = state.mu[start:end]
        likelihood = state.likelihood(oid, worker_psi)  # rows = answers u
        dist = likelihood @ mu
        total = dist.sum()
        if total > 0:
            dist = dist / total
        else:
            dist = np.full(len(mu), 1.0 / len(mu))
        joint = likelihood * mu  # broadcast over rows: joint[u, v]
        z = joint.sum(axis=1)
        z_pos = z > 0
        posterior = np.where(
            z_pos[:, None], joint / np.where(z_pos, z, 1.0)[:, None], mu[None, :]
        )
        conditional = (state.numer[start:end][None, :] + posterior) / (
            state.denom[oid] + 1.0
        )
        best = conditional.max(axis=1)
        expected_best = 0.0
        for answer_pos in range(len(mu)):
            p_answer = dist[answer_pos]
            if p_answer <= 0:
                continue
            expected_best += float(p_answer) * float(best[answer_pos])
        return (expected_best - float(state.mu_max[oid])) / n_objects

    @staticmethod
    def ueai(result: TDHResult, obj: ObjectId, n_objects: Optional[int] = None) -> float:
        """Upper bound ``UEAI(o)`` of Lemma 4.1."""
        n_objects = n_objects if n_objects is not None else len(result.confidences)
        mu = result.confidences[obj]
        return (1.0 - float(mu.max())) / (n_objects * (result.denominators[obj] + 1.0))

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def assign(
        self,
        dataset: TruthDiscoveryDataset,
        result: TDHResult,
        workers: Sequence[WorkerId],
        k: int,
    ) -> Assignment:
        if not isinstance(result, TDHResult):
            raise TypeError("EAI requires a TDHResult (it reuses the EM state)")
        self.eai_evaluations = 0
        objects = list(result.confidences)
        n_objects = len(objects)
        if not workers or k <= 0 or n_objects == 0:
            return {w: [] for w in workers}

        # Engine selection: a non-None state routes every quality-measure
        # call below (and any later eai() on the same result, e.g. the
        # simulator's improvement estimate) through the flat slot arrays.
        state = self._activate_state(dataset, result)
        if state is not None:
            # Lemma 4.1 upper bounds for all objects in one vectorized pass.
            ueai_all = (1.0 - state.mu_max) / (n_objects * (state.denom + 1.0))

            def ueai_of(obj: ObjectId) -> float:
                return float(ueai_all[state.index[obj]])

        else:

            def ueai_of(obj: ObjectId) -> float:
                return self.ueai(result, obj, n_objects)

        psi_by_worker = {w: result.worker_psi(w, self.default_psi) for w in workers}
        # Workers in decreasing order of psi_{w,1} (line 3 of Algorithm 1).
        ordered_workers = sorted(
            workers, key=lambda w: float(psi_by_worker[w][0]), reverse=True
        )
        answered = {
            w: set(dataset.objects_of_worker(w)) for w in ordered_workers
        }

        # Max-heap of UEAI over objects (line 1-2); heapq is a min-heap so we
        # negate. Tie-break on insertion order for determinism.
        ub_heap: List[Tuple[float, int, ObjectId]] = [
            (-ueai_of(obj), i, obj) for i, obj in enumerate(objects)
        ]
        heapq.heapify(ub_heap)

        # Per-worker min-heaps of assigned (EAI, seq, object).
        eai_heaps: Dict[WorkerId, List[Tuple[float, int, ObjectId]]] = {
            w: [] for w in ordered_workers
        }
        seq = 0

        def all_heaps_full() -> bool:
            return all(len(eai_heaps[w]) >= k for w in ordered_workers)

        def global_min_eai() -> float:
            return min(eai_heaps[w][0][0] for w in ordered_workers)

        while ub_heap:
            neg_ub, _, obj = heapq.heappop(ub_heap)
            upper = -neg_ub
            if self.use_pruning and all_heaps_full() and global_min_eai() >= upper:
                break  # no remaining object can beat any assigned one (line 8-9)

            # Try to place `obj`, cascading displaced objects to later workers.
            pending: Optional[ObjectId] = obj
            pending_eai: Optional[float] = None  # not yet computed for a worker
            for worker in ordered_workers:
                if pending is None:
                    break
                if pending in answered[worker]:
                    continue
                heap = eai_heaps[worker]
                if (
                    self.use_pruning
                    and len(heap) >= k
                    and pending_eai is None
                    and heap[0][0] >= upper
                ):
                    # This worker's worst task already beats the bound; the
                    # object cannot enter this heap (line 11-12).
                    continue
                value = self.eai(result, pending, psi_by_worker[worker], n_objects)
                seq += 1
                if len(heap) < k:
                    heapq.heappush(heap, (value, seq, pending))
                    pending = None
                elif value > heap[0][0]:
                    _, _, displaced = heapq.heapreplace(heap, (value, seq, pending))
                    pending = displaced  # reassign the evicted object (line 17)
                    pending_eai = None
                    upper = ueai_of(pending)
                # else: try the next worker with the same object

        return {
            w: [obj for _, _, obj in sorted(eai_heaps[w], reverse=True)]
            for w in ordered_workers
        }

"""Task-assignment policies: EAI (the paper's) plus QASCA, ME and MB."""

from .base import Assignment, TaskAssigner, worker_accuracy
from .eai import EAIAssigner
from .qasca import QascaAssigner
from .entropy import MaxEntropyAssigner, confidence_entropy
from .mb import MbAssigner
from .askit import AskItAssigner

__all__ = [
    "TaskAssigner",
    "Assignment",
    "worker_accuracy",
    "EAIAssigner",
    "QascaAssigner",
    "MaxEntropyAssigner",
    "confidence_entropy",
    "MbAssigner",
    "AskItAssigner",
]

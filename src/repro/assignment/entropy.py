"""ME — maximum-entropy uncertainty sampling baseline (paper Section 5.1).

Selects the objects whose confidence distribution has the highest Shannon
entropy: ``o* = argmax_o ( -sum_v mu_{o,v} log mu_{o,v} )``. Pure uncertainty
sampling — it ignores both worker quality and expected accuracy gain, which
is why the paper uses it as the floor for task-assignment comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..inference.base import InferenceResult
from .base import Assignment, TaskAssigner


def confidence_entropy(vec: np.ndarray) -> float:
    """Shannon entropy (nats) of a (possibly unnormalised) confidence vector."""
    vec = np.asarray(vec, dtype=float)
    total = vec.sum()
    if total <= 0:
        return 0.0
    p = vec / total
    p = p[p > 0]
    return float(-(p * np.log(p)).sum())


class MaxEntropyAssigner(TaskAssigner):
    """Assign the globally most-uncertain objects, round-robin over workers."""

    name = "ME"

    def assign(
        self,
        dataset: TruthDiscoveryDataset,
        result: InferenceResult,
        workers: Sequence[WorkerId],
        k: int,
    ) -> Assignment:
        scored: List[Tuple[float, int, ObjectId]] = [
            (confidence_entropy(vec), i, obj)
            for i, (obj, vec) in enumerate(result.confidences.items())
        ]
        scored.sort(key=lambda t: (-t[0], t[1]))
        ranking = [obj for _, _, obj in scored]
        answered = {w: set(dataset.objects_of_worker(w)) for w in workers}
        out: Dict[WorkerId, List[ObjectId]] = {w: [] for w in workers}
        assigned: set = set()

        # Fill worker slots round-robin from the entropy ranking; an object an
        # individual worker already answered stays available for the others.
        for _ in range(k):
            for worker in workers:
                for obj in ranking:
                    if obj in assigned or obj in answered[worker]:
                        continue
                    out[worker].append(obj)
                    assigned.add(obj)
                    break
        return out

"""MB — DOCS's entropy-reduction task assignment (Zheng et al., PVLDB 2016).

DOCS assigns the object whose *expected posterior entropy* drops the most,
weighted by the worker's per-domain quality: a worker strong in an object's
domain is expected to shrink its uncertainty more. This is the assigner the
paper pairs with DOCS (``DOCS+MB`` in Table 4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..inference.base import InferenceResult
from .base import Assignment, TaskAssigner, worker_accuracy
from .entropy import confidence_entropy


class MbAssigner(TaskAssigner):
    """Expected-entropy-reduction assignment with domain-aware worker quality."""

    name = "MB"

    def expected_entropy_reduction(
        self,
        result: InferenceResult,
        obj: ObjectId,
        worker: WorkerId,
    ) -> float:
        """Current entropy minus expected posterior entropy after an answer."""
        mu = np.asarray(result.confidences[obj], dtype=float)
        total = mu.sum()
        mu = mu / total if total > 0 else np.full(len(mu), 1.0 / len(mu))
        n = len(mu)
        if n == 1:
            return 0.0
        accuracy = self._domain_quality(result, obj, worker)
        accuracy = min(max(accuracy, 1e-3), 1 - 1e-3)
        likelihood = np.full((n, n), (1.0 - accuracy) / (n - 1))
        np.fill_diagonal(likelihood, accuracy)

        predictive = likelihood @ mu
        predictive = predictive / predictive.sum()
        current = confidence_entropy(mu)
        expected = 0.0
        for answer in range(n):
            posterior = mu * likelihood[answer]
            z = posterior.sum()
            if z <= 0:
                continue
            expected += float(predictive[answer]) * confidence_entropy(posterior / z)
        return current - expected

    @staticmethod
    def _domain_quality(result: InferenceResult, obj: ObjectId, worker: WorkerId) -> float:
        """Per-domain accuracy when the result carries DOCS state, else global."""
        domain_accuracy = getattr(result, "domain_accuracy", None)
        domains = getattr(result, "domains", None)
        if domain_accuracy is not None and domains is not None and obj in domains:
            domain = domains[obj]
            for key in ((("worker", worker), domain), (worker, domain)):
                if key in domain_accuracy:
                    return float(domain_accuracy[key])
        return worker_accuracy(result, worker)

    def assign(
        self,
        dataset: TruthDiscoveryDataset,
        result: InferenceResult,
        workers: Sequence[WorkerId],
        k: int,
    ) -> Assignment:
        objects = list(result.confidences)
        assigned: set = set()
        out: Dict[WorkerId, List[ObjectId]] = {w: [] for w in workers}
        for worker in workers:
            answered = set(dataset.objects_of_worker(worker))
            scored: List[Tuple[float, int, ObjectId]] = []
            for i, obj in enumerate(objects):
                if obj in assigned or obj in answered:
                    continue
                scored.append(
                    (self.expected_entropy_reduction(result, obj, worker), i, obj)
                )
            scored.sort(key=lambda t: (-t[0], t[1]))
            for _, _, obj in scored[:k]:
                out[worker].append(obj)
                assigned.add(obj)
        return out

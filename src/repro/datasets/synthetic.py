"""Seeded synthetic counterparts of the paper's crawled datasets.

The original *BirthPlaces* (kdd.snu.ac.kr) and *Heritages* (UNESCO + Bing)
crawls are not redistributable/available offline, so we generate datasets that
reproduce their published statistics and — more importantly — the structural
properties the algorithms key on:

* sources have individual reliability **and** generalization tendencies
  (Figure 1): a claim is exact with probability ``phi1``, a uniformly chosen
  ancestor of the truth with probability ``phi2``, wrong otherwise;
* wrong values are not uniform: a per-object *misinformation* value attracts
  a large share of wrong claims (the dependency Pop2/Pop3 models);
* BirthPlaces: few (7) high-coverage sources, ~13.5k records over 6,005
  objects, hierarchy ≈5k nodes height 5, mean source accuracy ≈ 0.72;
* Heritages: a long tail of ~1.6k sources with <10 claims each over 785
  objects, hierarchy ≈1k nodes height 6, mean source accuracy ≈ 0.58.

Object and hierarchy counts default to the paper's but can be scaled down
(``size`` parameter) for fast tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.model import Record, TruthDiscoveryDataset
from ..hierarchy.tree import Hierarchy, Value
from .geography import make_geography, sample_truths


@dataclass(frozen=True)
class SourceProfile:
    """Generative description of one source.

    Attributes
    ----------
    name:
        Source identifier.
    phi:
        ``(exact, generalized, wrong)`` claim probabilities; must sum to 1.
    coverage:
        Probability that this source claims about any given object.
    """

    name: str
    phi: Tuple[float, float, float]
    coverage: float

    def __post_init__(self) -> None:
        if abs(sum(self.phi) - 1.0) > 1e-9:
            raise ValueError(f"phi must sum to 1, got {self.phi}")
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")


# Calibrated on Figure 5: two near-complete sources, five small ones, some of
# which generalize heavily; claim counts ~ (5975, 5272, 605, 340, 532, 399, 387).
BIRTHPLACES_PROFILES = (
    SourceProfile("source_1", (0.80, 0.10, 0.10), 0.995),
    SourceProfile("source_2", (0.84, 0.06, 0.10), 0.878),
    SourceProfile("source_3", (0.58, 0.32, 0.10), 0.101),
    SourceProfile("source_4", (0.62, 0.30, 0.08), 0.057),
    SourceProfile("source_5", (0.68, 0.24, 0.08), 0.089),
    SourceProfile("source_6", (0.78, 0.08, 0.14), 0.066),
    SourceProfile("source_7", (0.54, 0.38, 0.08), 0.064),
)


def _claim_value(
    truth: Value,
    hierarchy: Hierarchy,
    phi: Sequence[float],
    misinformation: Value,
    wrong_pool: List[Value],
    rng: np.random.Generator,
    misinformation_share: float = 0.6,
) -> Value:
    """Draw one claimed value per the three-case generative model (Sec 3.1)."""
    case = rng.choice(3, p=np.asarray(phi, dtype=float))
    if case == 1:
        ancestors = hierarchy.ancestors(truth)
        if ancestors:
            return ancestors[int(rng.integers(len(ancestors)))]
        case = 0  # depth-1 truth has no informative generalization
    if case == 0:
        return truth
    # Wrong claim: misinformation attracts a fixed share, the rest is uniform
    # over a pool of plausible-but-wrong values.
    if misinformation != truth and rng.random() < misinformation_share:
        return misinformation
    for _ in range(16):
        value = wrong_pool[int(rng.integers(len(wrong_pool)))]
        if value != truth:
            return value
    return misinformation if misinformation != truth else wrong_pool[0]


def _wrong_pool(hierarchy: Hierarchy, rng: np.random.Generator, size: int = 512) -> List[Value]:
    """A reusable pool of claimable (non-root) values for wrong claims."""
    nodes = [n for n in hierarchy.non_root_nodes() if hierarchy.depth(n) >= 1]
    if len(nodes) <= size:
        return nodes
    picks = rng.choice(len(nodes), size=size, replace=False)
    return [nodes[i] for i in picks]


def make_birthplaces(
    size: int = 6005,
    seed: int = 7,
    profiles: Sequence[SourceProfile] = BIRTHPLACES_PROFILES,
    hierarchy: Optional[Hierarchy] = None,
) -> TruthDiscoveryDataset:
    """Synthetic BirthPlaces-like dataset (6,005 objects, 7 sources by default).

    Every object is claimed by at least one source (objects nobody mentions
    do not enter a truth-discovery instance).
    """
    rng = np.random.default_rng(seed)
    if hierarchy is None:
        hierarchy = make_geography(
            height=5, branching=(4, 7, 6, 5, 2), rng=rng, max_nodes=5000
        )
    truths = sample_truths(hierarchy, size, rng, min_depth=2)
    objects = [f"person_{i}" for i in range(size)]
    gold = dict(zip(objects, truths))
    pool = _wrong_pool(hierarchy, rng)

    records: List[Record] = []
    for obj, truth in zip(objects, truths):
        misinformation = pool[int(rng.integers(len(pool)))]
        claimed_by_any = False
        for profile in profiles:
            if rng.random() >= profile.coverage:
                continue
            value = _claim_value(truth, hierarchy, profile.phi, misinformation, pool, rng)
            records.append(Record(obj, profile.name, value))
            claimed_by_any = True
        if not claimed_by_any:
            # Fall back to the highest-coverage source so the object exists.
            profile = max(profiles, key=lambda p: p.coverage)
            value = _claim_value(truth, hierarchy, profile.phi, misinformation, pool, rng)
            records.append(Record(obj, profile.name, value))
    return TruthDiscoveryDataset(hierarchy, records, gold=gold, name="birthplaces")


def make_heritages(
    size: int = 785,
    n_sources: int = 1577,
    seed: int = 11,
    hierarchy: Optional[Hierarchy] = None,
    mean_sources_per_object: float = 5.6,
) -> TruthDiscoveryDataset:
    """Synthetic Heritages-like dataset: long-tail sources, low mean accuracy.

    Source reliabilities are drawn so the mean source accuracy lands near the
    paper's 0.58; popularity over sources is Zipf-like so most sources make
    only a handful of claims — the regime where per-source reliability is hard
    to estimate and VOTE becomes competitive (Section 5.2).
    """
    rng = np.random.default_rng(seed)
    if hierarchy is None:
        hierarchy = make_geography(
            height=6, branching=(3, 4, 4, 3, 2, 2), rng=rng, max_nodes=1030
        )
    truths = sample_truths(hierarchy, size, rng, min_depth=2)
    objects = [f"site_{i}" for i in range(size)]
    gold = dict(zip(objects, truths))
    pool = _wrong_pool(hierarchy, rng)

    # Per-source trustworthiness: exact accuracy centred near the paper's
    # 0.58 source mean but with heavy spread; a strong generalization habit
    # so VOTE's GenAccuracy tops the chart as in Table 3.
    exact = np.clip(rng.beta(4.0, 4.0, size=n_sources), 0.05, 0.9)
    generalized = np.clip(rng.beta(3.0, 4.5, size=n_sources), 0.0, 1.0)
    generalized = np.minimum(generalized, 0.95 - exact)
    phis = np.stack([exact, generalized, 1.0 - exact - generalized], axis=1)

    # Zipf-like popularity over sources.
    popularity = 1.0 / np.arange(1, n_sources + 1) ** 0.65
    popularity /= popularity.sum()

    records: List[Record] = []
    for obj, truth in zip(objects, truths):
        misinformation = pool[int(rng.integers(len(pool)))]
        k = max(1, int(rng.poisson(mean_sources_per_object)))
        k = min(k, n_sources)
        chosen = rng.choice(n_sources, size=k, replace=False, p=popularity)
        for idx in chosen:
            value = _claim_value(truth, hierarchy, phis[idx], misinformation, pool, rng)
            records.append(Record(obj, f"site_source_{idx}", value))
    return TruthDiscoveryDataset(hierarchy, records, gold=gold, name="heritages")

"""Random geographical hierarchy generator.

The paper's hierarchies are geographic containment trees built from IMDb /
UNESCO location strings (BirthPlaces: 4,999 nodes, height 5; Heritages: 1,027
nodes, height 6). This module generates seeded random trees with the same
level semantics (continent > country > region > city > district ...), with a
branching profile calibrated so node counts and heights land near the paper's
statistics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..hierarchy.tree import Hierarchy, Value

LEVEL_NAMES = ("continent", "country", "region", "city", "district", "site")


def make_geography(
    height: int = 5,
    branching: Sequence[int] = (5, 8, 6, 5, 3),
    rng: Optional[np.random.Generator] = None,
    max_nodes: Optional[int] = None,
) -> Hierarchy:
    """Generate a random geography-like hierarchy.

    Parameters
    ----------
    height:
        Tree height (edges from root to the deepest leaves).
    branching:
        Mean number of children per node at each level; actual child counts
        are Poisson-distributed around these means (min 1), which produces the
        skewed fan-outs of real gazetteers.
    rng:
        Seeded generator for reproducibility; defaults to a fresh one.
    max_nodes:
        Optional cap; generation stops adding children once reached.

    Returns
    -------
    Hierarchy
        Node labels look like ``"city_42"`` with a globally unique counter.
    """
    if height < 1:
        raise ValueError("height must be >= 1")
    if len(branching) < height:
        raise ValueError("need a branching factor for every level")
    rng = rng if rng is not None else np.random.default_rng()

    hierarchy = Hierarchy()
    frontier: List[Value] = [hierarchy.root]
    counter = 0
    for level in range(height):
        level_name = LEVEL_NAMES[min(level, len(LEVEL_NAMES) - 1)]
        next_frontier: List[Value] = []
        for parent in frontier:
            n_children = max(1, int(rng.poisson(branching[level])))
            for _ in range(n_children):
                if max_nodes is not None and len(hierarchy) >= max_nodes + 1:
                    break
                label = f"{level_name}_{counter}"
                counter += 1
                hierarchy.add_edge(label, parent)
                next_frontier.append(label)
        frontier = next_frontier
        if not frontier:
            break
    return hierarchy


def leaf_paths(hierarchy: Hierarchy) -> List[List[Value]]:
    """Root-to-leaf paths (root excluded), one per leaf."""
    paths = []
    for leaf in hierarchy.leaves():
        path = hierarchy.path_to_root(leaf)[:-1]  # drop the root
        paths.append(list(reversed(path)))
    return paths


def sample_truths(
    hierarchy: Hierarchy,
    n: int,
    rng: np.random.Generator,
    min_depth: int = 2,
) -> List[Value]:
    """Sample ``n`` ground-truth values, biased toward specific (deep) nodes.

    Real truths (birthplaces, site locations) are specific places, so we
    sample leaves and near-leaves: any node at depth >= ``min_depth``, with
    probability proportional to ``depth**2``.
    """
    candidates = [
        node for node in hierarchy.non_root_nodes() if hierarchy.depth(node) >= min_depth
    ]
    if not candidates:
        raise ValueError("hierarchy has no nodes at the requested depth")
    weights = np.array([hierarchy.depth(node) ** 2 for node in candidates], dtype=float)
    weights /= weights.sum()
    picks = rng.choice(len(candidates), size=n, p=weights)
    return [candidates[i] for i in picks]

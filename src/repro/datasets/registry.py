"""Dataset registry: ``load_dataset(name)`` for the paper's datasets.

Sizes default to the paper's; pass ``size`` (and friends) to scale down for
tests. Names are case-insensitive.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..data.model import TruthDiscoveryDataset
from .stock import claims_to_dataset, make_stock_claims
from .synthetic import make_birthplaces, make_heritages


def _load_stock(seed: int = 23, **kwargs) -> TruthDiscoveryDataset:
    attribute = kwargs.pop("attribute", "open_price")
    claims, gold = make_stock_claims(attribute, seed=seed, **kwargs)
    return claims_to_dataset(claims, gold, name=f"stock-{attribute}")


_REGISTRY: Dict[str, Callable[..., TruthDiscoveryDataset]] = {
    "birthplaces": make_birthplaces,
    "heritages": make_heritages,
    "stock": _load_stock,
}


def dataset_names() -> list:
    """Registered dataset names."""
    return sorted(_REGISTRY)


def load_dataset(name: str, **kwargs) -> TruthDiscoveryDataset:
    """Build a registered dataset.

    Examples
    --------
    >>> ds = load_dataset("birthplaces", size=500, seed=1)
    >>> ds.name
    'birthplaces'
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; options: {dataset_names()}")
    return _REGISTRY[key](**kwargs)

"""Synthetic stock dataset for the numeric experiment (paper Section 5.8).

The original dataset (Li et al., PVLDB 2012) has trading data for 1,000
symbols from 55 sources. We generate per-attribute claim tables with the
behaviours the experiment probes:

* sources report at mixed precision (significant-digit truncation — the
  implicit hierarchy);
* some sources are noisy (small perturbations);
* a few claims are *outliers* (scale errors like missing decimal points),
  which break averaging-based methods (MEAN, CATD) but not selection-based
  ones (TDH, VOTE).

Each attribute gets its own value scale: ``change_rate`` (small signed
ratios), ``open_price`` (tens to hundreds), ``eps`` (earnings per share,
around a few units).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple

import numpy as np

from ..data.model import Record, TruthDiscoveryDataset
from ..hierarchy.numeric import build_numeric_hierarchy, round_to_significant

ATTRIBUTES = ("change_rate", "open_price", "eps")


@dataclass(frozen=True)
class StockAttribute:
    """Generative settings for one numeric attribute."""

    name: str
    low: float
    high: float
    noise_scale: float  # relative perturbation for noisy sources
    outlier_rate: float


ATTRIBUTE_SPECS = {
    "change_rate": StockAttribute("change_rate", -0.08, 0.08, 0.15, 0.01),
    "open_price": StockAttribute("open_price", 5.0, 400.0, 0.002, 0.01),
    "eps": StockAttribute("eps", 0.05, 9.0, 0.08, 0.02),
}


def make_stock_claims(
    attribute: str,
    n_objects: int = 1000,
    n_sources: int = 55,
    seed: int = 23,
    max_digits: int = 4,
) -> Tuple[Dict[Hashable, Dict[Hashable, float]], Dict[Hashable, float]]:
    """Generate ``(claims, gold)`` for one attribute.

    ``claims[obj][source]`` is the claimed float; ``gold[obj]`` the truth.
    Sources have individual precision habits (how many significant digits
    they publish) and error rates.
    """
    if attribute not in ATTRIBUTE_SPECS:
        raise ValueError(f"unknown attribute {attribute!r}; options: {ATTRIBUTES}")
    spec = ATTRIBUTE_SPECS[attribute]
    rng = np.random.default_rng(seed)

    precision = rng.integers(2, max_digits + 1, size=n_sources)  # digits published
    error_rate = np.clip(rng.beta(2.0, 10.0, size=n_sources), 0.0, 0.6)
    coverage = np.clip(rng.beta(8.0, 2.0, size=n_sources), 0.2, 1.0)

    claims: Dict[Hashable, Dict[Hashable, float]] = {}
    gold: Dict[Hashable, float] = {}
    for i in range(n_objects):
        obj = f"{attribute}_{i}"
        truth = float(rng.uniform(spec.low, spec.high))
        truth = round_to_significant(truth, max_digits + 2)
        gold[obj] = truth
        per_obj: Dict[Hashable, float] = {}
        for s in range(n_sources):
            if rng.random() >= coverage[s]:
                continue
            source = f"stock_source_{s}"
            if rng.random() < spec.outlier_rate:
                # Scale error: decimal shift, the classic deep-web glitch.
                value = truth * float(rng.choice([10.0, 100.0, 0.1]))
            elif rng.random() < error_rate[s]:
                value = truth * (1.0 + float(rng.normal(0.0, spec.noise_scale)))
            else:
                value = truth
            per_obj[source] = round_to_significant(value, int(precision[s]))
        if not per_obj:
            per_obj["stock_source_0"] = round_to_significant(truth, int(precision[0]))
        claims[obj] = per_obj
    return claims, gold


def claims_to_dataset(
    claims: Mapping[Hashable, Mapping[Hashable, float]],
    gold: Mapping[Hashable, float],
    name: str = "stock",
    max_digits: int = 6,
) -> TruthDiscoveryDataset:
    """Wrap numeric claims in a :class:`TruthDiscoveryDataset`.

    Builds the implicit rounding hierarchy over all claimed values (Section
    3.2 extension), canonicalises claims onto hierarchy nodes and projects the
    gold values onto the hierarchy for evaluation.
    """
    all_values = {v for per_obj in claims.values() for v in per_obj.values()}
    all_values.update(float(v) for v in gold.values())
    hierarchy, canonical = build_numeric_hierarchy(all_values, max_digits=max_digits)

    records: List[Record] = []
    for obj, per_obj in claims.items():
        for source, value in per_obj.items():
            records.append(Record(obj, source, canonical[float(value)]))
    projected_gold = {obj: canonical[float(v)] for obj, v in gold.items()}
    return TruthDiscoveryDataset(hierarchy, records, gold=projected_gold, name=name)

"""Dataset substrate: synthetic counterparts of the paper's datasets."""

from .geography import make_geography, sample_truths
from .synthetic import (
    BIRTHPLACES_PROFILES,
    SourceProfile,
    make_birthplaces,
    make_heritages,
)
from .stock import ATTRIBUTES, claims_to_dataset, make_stock_claims
from .registry import dataset_names, load_dataset

__all__ = [
    "make_geography",
    "sample_truths",
    "make_birthplaces",
    "make_heritages",
    "SourceProfile",
    "BIRTHPLACES_PROFILES",
    "make_stock_claims",
    "claims_to_dataset",
    "ATTRIBUTES",
    "load_dataset",
    "dataset_names",
]

"""Crowdsourcing substrate: simulated workers and the round-based simulator."""

from .workers import SimulatedWorker, make_amt_panel, make_human_panel, make_worker_pool
from .simulator import CrowdSimulator, RoundRecord, SimulationHistory

__all__ = [
    "SimulatedWorker",
    "make_worker_pool",
    "make_human_panel",
    "make_amt_panel",
    "CrowdSimulator",
    "RoundRecord",
    "SimulationHistory",
]

"""Simulated crowd workers (paper Section 5, "Settings for simulated
crowdsourcing" and the human/AMT panels of Sections 5.5-5.6).

The paper's simulated worker answers correctly with its own probability
``p_w`` and picks a uniformly random candidate otherwise, with
``p_w ~ U(pi_p - 0.05, pi_p + 0.05)`` and a default ``pi_p = 0.75``.

Human annotators additionally *generalize*: when unsure of the exact place
they answer with a broader correct region. :class:`SimulatedWorker` models
both with an ``(exact, generalized, random)`` probability triple; the plain
simulated worker has a zero generalization component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..eval.metrics import effective_truth
from ..hierarchy.tree import Value


@dataclass
class SimulatedWorker:
    """A crowd worker with an ``(exact, generalized, random)`` behaviour triple.

    ``p_exact`` is the paper's ``p_w``. When a generalization draw finds no
    candidate ancestor of the truth (or the truth is unknown), the draw falls
    back to exact; failing that, to a uniform random candidate.
    """

    worker_id: WorkerId
    p_exact: float
    p_generalize: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_exact <= 1.0:
            raise ValueError("p_exact must be in [0, 1]")
        if not 0.0 <= self.p_generalize <= 1.0 - self.p_exact:
            raise ValueError("p_generalize must leave room for the random case")

    def answer(
        self,
        dataset: TruthDiscoveryDataset,
        obj: ObjectId,
        rng: np.random.Generator,
    ) -> Value:
        """Produce an answer for ``obj`` by selecting among its candidates."""
        ctx = dataset.context(obj)
        candidates = ctx.values
        gold_value = dataset.gold.get(obj)
        truth = (
            effective_truth(dataset, obj, gold_value) if gold_value is not None else None
        )
        draw = rng.random()
        if truth is not None and draw < self.p_exact:
            return truth
        if truth is not None and draw < self.p_exact + self.p_generalize:
            ancestors = [
                candidates[pos] for pos in ctx.ancestor_sets[ctx.index[truth]]
            ]
            if ancestors:
                return ancestors[int(rng.integers(len(ancestors)))]
            return truth
        return candidates[int(rng.integers(len(candidates)))]


def _resolve_rng(
    seed: Optional[int], rng: Optional[np.random.Generator]
) -> np.random.Generator:
    """An explicit generator wins; otherwise one is built from ``seed``.

    All randomness in this module flows through generators passed this way —
    there is no module-level RNG state — so CI runs are reproducible across
    Python/NumPy versions as long as callers pass a seed or generator.
    """
    return rng if rng is not None else np.random.default_rng(seed)


def make_worker_pool(
    n: int,
    pi_p: float = 0.75,
    spread: float = 0.05,
    seed: Optional[int] = None,
    p_generalize: float = 0.0,
    prefix: str = "worker",
    rng: Optional[np.random.Generator] = None,
) -> List[SimulatedWorker]:
    """The paper's simulated panel: ``p_w ~ U(pi_p - spread, pi_p + spread)``."""
    rng = _resolve_rng(seed, rng)
    low = max(pi_p - spread, 0.0)
    high = min(pi_p + spread, 1.0 - p_generalize)
    low = min(low, high)
    return [
        SimulatedWorker(
            worker_id=f"{prefix}_{i}",
            p_exact=float(rng.uniform(low, high)),
            p_generalize=p_generalize,
        )
        for i in range(n)
    ]


def make_human_panel(
    n: int = 10,
    seed: Optional[int] = None,
    pi_p: float = 0.82,
    p_generalize: float = 0.08,
    rng: Optional[np.random.Generator] = None,
) -> List[SimulatedWorker]:
    """A panel mimicking the paper's 10 human annotators (Section 5.5).

    Humans are more accurate than the default simulated workers and sometimes
    answer with a correct-but-broader region.
    """
    return make_worker_pool(
        n,
        pi_p=pi_p,
        spread=0.06,
        seed=seed,
        p_generalize=p_generalize,
        prefix="human",
        rng=rng,
    )


def make_amt_panel(
    n: int = 20,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[SimulatedWorker]:
    """A panel mimicking the paper's 20 AMT workers (Section 5.6).

    Commercial crowds are mixed: a few diligent workers, many average ones
    and some near-random spammers.
    """
    rng = _resolve_rng(seed, rng)
    workers: List[SimulatedWorker] = []
    for i in range(n):
        tier = rng.random()
        if tier < 0.2:
            p_exact = float(rng.uniform(0.85, 0.95))
        elif tier < 0.85:
            p_exact = float(rng.uniform(0.6, 0.85))
        else:
            p_exact = float(rng.uniform(0.2, 0.4))
        workers.append(
            SimulatedWorker(
                worker_id=f"amt_{i}",
                p_exact=p_exact,
                p_generalize=min(0.05, 1.0 - p_exact),
            )
        )
    return workers

"""Round-based crowdsourced truth-discovery simulator (paper Figure 2).

Each round the simulator (1) runs truth inference over records + answers so
far, (2) scores the current truths against the gold standard, (3) asks the
task assigner for ``k`` objects per worker, (4) collects simulated answers
and folds them into the dataset. This is the loop behind Figures 6-11 and
14-17 and Table 4.

The round-0 entry of the history is the no-crowdsourcing operating point, as
in the paper's plots.

When the model/assigner run their columnar engines, the whole loop stays on
**one live encoding**: the simulator's private dataset copy carries the
input's cached encoding forward (``dataset.copy()``), the answers collected
each round are spliced in by the incremental appender
(:class:`~repro.data.columnar.ColumnarAppender`, transparently via
``dataset.columnar()``), and the EAI assigner reuses the columnar TDH EM
state plus per-``records_version`` likelihood tables across rounds — no
per-round O(claims) rebuild anywhere. A model built with ``n_jobs > 1``
(see :mod:`repro.data.sharding`) additionally fans each round's E/M steps
out over object-range shards; the simulator needs no knob of its own —
the sharded fits are bitwise-identical, so the assignment log and metric
series are unchanged at any worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..assignment.base import Assignment, TaskAssigner
from ..data.model import Answer, ObjectId, TruthDiscoveryDataset, WorkerId
from ..eval.metrics import EvaluationReport, evaluate
from ..inference.base import InferenceResult, TruthInferenceAlgorithm
from ..inference.tdh import TDHModel, TDHResult
from ..inference._structures import StructureCache
from .workers import SimulatedWorker


@dataclass
class RoundRecord:
    """Everything measured in one round."""

    round: int
    accuracy: float
    gen_accuracy: float
    avg_distance: float
    answers_collected: int
    inference_seconds: float
    assignment_seconds: float
    estimated_improvement: Optional[float] = None
    actual_improvement: Optional[float] = None


@dataclass
class SimulationHistory:
    """Per-round records plus convenience accessors for plotting/benching."""

    records: List[RoundRecord] = field(default_factory=list)

    def series(self, metric: str) -> List[float]:
        """Column extraction, e.g. ``history.series("accuracy")``."""
        return [getattr(r, metric) for r in self.records]

    @property
    def final(self) -> RoundRecord:
        return self.records[-1]

    def at_round(self, n: int) -> RoundRecord:
        for record in self.records:
            if record.round == n:
                return record
        raise KeyError(f"no record for round {n}")


class CrowdSimulator:
    """Drives inference + task assignment + simulated answering.

    Parameters
    ----------
    dataset:
        The base dataset (records only, or with pre-existing answers). The
        simulator works on a copy; the input is never mutated.
    model:
        Truth-inference algorithm. :class:`TDHModel` gets warm starts and a
        shared structure cache across rounds.
    assigner:
        Task-assignment policy.
    workers:
        The simulated worker panel.
    seed:
        Seed for answer generation.
    rng:
        Optional explicit :class:`numpy.random.Generator` for answer
        generation; overrides ``seed``. All simulator randomness flows
        through this single generator (no module-level RNG state), which
        keeps runs bit-reproducible across interpreter versions.
    """

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        model: TruthInferenceAlgorithm,
        assigner: TaskAssigner,
        workers: Sequence[SimulatedWorker],
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.dataset = dataset.copy()
        self.model = model
        self.assigner = assigner
        self.workers = list(workers)
        #: Per-round assignments, appended by :meth:`run` — the regression
        #: surface for engine-parity tests (columnar vs reference runs must
        #: produce identical sequences).
        self.assignment_log: List[Assignment] = []
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._structure_cache = (
            model.make_structure_cache(self.dataset)
            if isinstance(model, TDHModel)
            else StructureCache(self.dataset)
        )
        self._previous_result: Optional[InferenceResult] = None

    # ------------------------------------------------------------------
    def _infer(self) -> InferenceResult:
        if isinstance(self.model, TDHModel):
            warm = (
                self._previous_result
                if isinstance(self._previous_result, TDHResult)
                else None
            )
            return self.model.fit(
                self.dataset, warm_start=warm, structures=self._structure_cache
            )
        if getattr(self.model, "supports_incremental", False):
            # Confusion-family models (DS/LFC/ZenCrowd) accept warm_start=;
            # with their incremental knob on, each round re-converges only
            # the dirty frontier of the previous round's result. The warm
            # gate passes because the simulator fits its own private copy
            # and answers never bump records_version.
            return self.model.fit(self.dataset, warm_start=self._previous_result)
        return self.model.fit(self.dataset)

    def _collect(self, assignment: Assignment) -> int:
        by_id: Dict[WorkerId, SimulatedWorker] = {
            w.worker_id: w for w in self.workers
        }
        collected = 0
        for worker_id, objects in assignment.items():
            worker = by_id[worker_id]
            for obj in objects:
                value = worker.answer(self.dataset, obj, self._rng)
                self.dataset.add_answer(Answer(obj, worker_id, value))
                collected += 1
        return collected

    def _estimate_improvement(
        self, result: InferenceResult, assignment: Assignment
    ) -> Optional[float]:
        """Sum of the assigner's own quality estimates over assigned pairs."""
        from ..assignment.eai import EAIAssigner
        from ..assignment.qasca import QascaAssigner

        if isinstance(self.assigner, EAIAssigner) and isinstance(result, TDHResult):
            total = 0.0
            for worker_id, objects in assignment.items():
                psi = result.worker_psi(worker_id, self.assigner.default_psi)
                for obj in objects:
                    total += self.assigner.eai(result, obj, psi)
            return total
        if isinstance(self.assigner, QascaAssigner):
            total = 0.0
            for worker_id, objects in assignment.items():
                for obj in objects:
                    total += self.assigner.improvement(
                        self.dataset, result, obj, worker_id
                    )
            return total
        return None

    # ------------------------------------------------------------------
    def run(
        self,
        rounds: int,
        tasks_per_worker: int = 5,
        evaluate_every: int = 1,
    ) -> SimulationHistory:
        """Run the crowdsourcing loop and return the per-round history."""
        history = SimulationHistory()
        worker_ids = [w.worker_id for w in self.workers]

        result = self._infer()
        report = evaluate(self.dataset, result.truths())
        history.records.append(
            RoundRecord(
                round=0,
                accuracy=report.accuracy,
                gen_accuracy=report.gen_accuracy,
                avg_distance=report.avg_distance,
                answers_collected=0,
                inference_seconds=0.0,
                assignment_seconds=0.0,
            )
        )
        self._previous_result = result

        for round_no in range(1, rounds + 1):
            t0 = time.perf_counter()
            assignment = self.assigner.assign(
                self.dataset, result, worker_ids, tasks_per_worker
            )
            assignment_seconds = time.perf_counter() - t0
            self.assignment_log.append(assignment)
            estimated = self._estimate_improvement(result, assignment)
            collected = self._collect(assignment)

            t0 = time.perf_counter()
            result = self._infer()
            inference_seconds = time.perf_counter() - t0
            self._previous_result = result

            if round_no % evaluate_every == 0 or round_no == rounds:
                report = evaluate(self.dataset, result.truths())
                previous = history.records[-1]
                history.records.append(
                    RoundRecord(
                        round=round_no,
                        accuracy=report.accuracy,
                        gen_accuracy=report.gen_accuracy,
                        avg_distance=report.avg_distance,
                        answers_collected=collected,
                        inference_seconds=inference_seconds,
                        assignment_seconds=assignment_seconds,
                        estimated_improvement=estimated,
                        actual_improvement=report.accuracy - previous.accuracy,
                    )
                )
        return history

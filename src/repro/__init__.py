"""repro: reproduction of "Crowdsourced Truth Discovery in the Presence of
Hierarchies for Knowledge Fusion" (Jung, Kim & Shim, EDBT 2019).

The package implements the paper's TDH truth-inference model and EAI task
assigner, every baseline it compares against, the crowdsourcing simulator,
the evaluation measures and seeded synthetic counterparts of its datasets.
See README.md for a tour and DESIGN.md for the system inventory.
"""

from .hierarchy import Hierarchy
from .data import Answer, Record, TruthDiscoveryDataset
from .inference import (
    Accu,
    Asums,
    Catd,
    Crh,
    CrhNumeric,
    Dart,
    Docs,
    GuessLca,
    InferenceResult,
    Lfc,
    LfcMT,
    Ltm,
    Mdc,
    Mean,
    PopAccu,
    TDHModel,
    TDHResult,
    Vote,
)
from .assignment import (
    AskItAssigner,
    EAIAssigner,
    MaxEntropyAssigner,
    MbAssigner,
    QascaAssigner,
)
from .crowd import (
    CrowdSimulator,
    SimulatedWorker,
    SimulationHistory,
    make_amt_panel,
    make_human_panel,
    make_worker_pool,
)
from .eval import evaluate, evaluate_multitruth, evaluate_numeric
from .datasets import load_dataset, make_birthplaces, make_heritages
from .serving import (
    PublishedResult,
    SupervisionPolicy,
    TruthRead,
    TruthService,
    WriteAheadJournal,
    recover,
)

__version__ = "1.0.0"

__all__ = [
    "Hierarchy",
    "Record",
    "Answer",
    "TruthDiscoveryDataset",
    "InferenceResult",
    "TDHModel",
    "TDHResult",
    "Vote",
    "Accu",
    "PopAccu",
    "Lfc",
    "LfcMT",
    "Crh",
    "CrhNumeric",
    "GuessLca",
    "Asums",
    "Mdc",
    "Docs",
    "Ltm",
    "Dart",
    "Catd",
    "Mean",
    "EAIAssigner",
    "QascaAssigner",
    "MaxEntropyAssigner",
    "MbAssigner",
    "AskItAssigner",
    "CrowdSimulator",
    "SimulationHistory",
    "SimulatedWorker",
    "make_worker_pool",
    "make_human_panel",
    "make_amt_panel",
    "evaluate",
    "evaluate_multitruth",
    "evaluate_numeric",
    "load_dataset",
    "make_birthplaces",
    "make_heritages",
    "TruthService",
    "TruthRead",
    "PublishedResult",
    "SupervisionPolicy",
    "WriteAheadJournal",
    "recover",
    "__version__",
]

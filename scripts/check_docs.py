"""Docs smoke check: every code snippet quoted in the docs must stay runnable.

Two kinds of fenced blocks are verified:

* ``python`` blocks in ``docs/*.md`` are executed verbatim (blocks within
  one file share a namespace, so later blocks may build on earlier ones);
* ``bash`` blocks in ``README.md`` and ``docs/*.md`` are scanned for
  ``python -m repro.experiments ...`` command lines, which are dry-run
  through the real CLI parser (``repro.experiments.__main__.build_parser``)
  so renamed experiments or dropped flags fail the check without paying for
  a full experiment run.

Run from the repo root (CI's docs job does exactly this):

    PYTHONPATH=src python scripts/check_docs.py

Exits non-zero listing every failing snippet. The same checks run inside the
tier-1 suite via ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import shlex
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def fenced_blocks(path: Path, language: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, body)`` for every fenced block of ``language``."""
    text = path.read_text()
    for match in FENCE.finditer(text):
        if match.group(1) == language:
            line = text[: match.start()].count("\n") + 1
            yield line, match.group(2)


def doc_files() -> List[Path]:
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    return [REPO_ROOT / "README.md", *docs]


def check_python_blocks() -> List[str]:
    """Execute every ``python`` block in docs/*.md; return failure messages."""
    failures = []
    for path in sorted((REPO_ROOT / "docs").glob("*.md")):
        namespace: dict = {}
        for line, body in fenced_blocks(path, "python"):
            try:
                exec(compile(body, f"{path.name}:{line}", "exec"), namespace)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                failures.append(f"{path.name}:{line}: python snippet failed: {exc!r}")
    return failures


def experiment_cli_argv(command: str) -> List[str] | None:
    """The argv of a quoted experiments-CLI line, or ``None`` if it is not one.

    Tolerates leading ``VAR=value`` assignments (the README quotes the
    uninstalled ``PYTHONPATH=src python -m repro.experiments ...`` style) and
    ``python3``.
    """
    tokens = shlex.split(command)
    while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
        tokens = tokens[1:]
    if tokens[:3] in (
        ["python", "-m", "repro.experiments"],
        ["python3", "-m", "repro.experiments"],
    ):
        return tokens[3:]
    return None


def check_cli_lines() -> Tuple[List[str], int]:
    """Dry-run every quoted experiments-CLI command line.

    Returns ``(failures, checked_count)`` — callers must treat a zero count
    as a failure so reworded commands cannot silently escape the check.
    """
    from repro.experiments import EXPERIMENTS
    from repro.experiments.__main__ import build_parser

    parser = build_parser()
    failures = []
    checked = 0
    for path in doc_files():
        for line, body in fenced_blocks(path, "bash"):
            for offset, raw in enumerate(body.splitlines()):
                command = raw.split("#", 1)[0].strip()
                if not command or "repro.experiments" not in command:
                    continue
                where = f"{path.name}:{line + offset}"
                argv = experiment_cli_argv(command)
                if argv is None:
                    failures.append(
                        f"{where}: experiments-CLI line not in checkable form"
                        f" (use `python -m repro.experiments ...`): {command}"
                    )
                    continue
                checked += 1
                try:
                    args = parser.parse_args(argv)
                except SystemExit:
                    failures.append(f"{where}: CLI line no longer parses: {command}")
                    continue
                if args.experiment not in (None, "all") and args.experiment not in EXPERIMENTS:
                    failures.append(f"{where}: unknown experiment {args.experiment!r}")
    return failures, checked


def main() -> int:
    cli_failures, cli_count = check_cli_lines()
    failures = check_python_blocks() + cli_failures
    python_count = sum(
        1 for p in (REPO_ROOT / "docs").glob("*.md") for _ in fenced_blocks(p, "python")
    )
    if python_count == 0:
        failures.append("docs/*.md contain no python snippets — checker is vacuous")
    if cli_count == 0:
        failures.append("no experiments-CLI lines found — checker is vacuous")
    for failure in failures:
        print(f"FAIL {failure}")
    if not failures:
        print(
            f"docs OK ({python_count} python snippet(s) executed,"
            f" {cli_count} CLI line(s) parsed)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

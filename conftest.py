"""Repo-level pytest configuration: the ``--runslow`` split.

Tests marked ``@pytest.mark.slow`` (the long EM-convergence / multi-round
crowd-loop benchmarks) are skipped by default so the CI matrix job stays
fast; pass ``--runslow`` to include them:

    python -m pytest --runslow -q
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked 'slow' (long EM-convergence benchmarks)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

"""Web-source trustworthiness audit — a knowledge-fusion application.

The paper's introduction names web-source trustworthiness estimation and data
cleaning as the two applications of truth discovery. This example runs TDH on
a synthetic Heritages-style crawl, ranks the sources by their estimated
trustworthiness profile, separates "generalizers" from genuinely unreliable
sources (the distinction single-reliability models miss), and flags the
claims most likely to be extraction errors for cleaning.

Run:  python examples/web_source_audit.py
"""

from repro import TDHModel, make_heritages


def main() -> None:
    dataset = make_heritages(size=300, n_sources=400, seed=11)
    print("Synthetic Heritages crawl:", dataset.stats(), "\n")

    result = TDHModel(max_iter=30, tol=1e-4).fit(dataset)

    # Rank sources with enough claims to audit.
    audited = [
        (source, result.source_trustworthiness(source), len(dataset.objects_of_source(source)))
        for source in dataset.sources
        if len(dataset.objects_of_source(source)) >= 5
    ]
    audited.sort(key=lambda row: -row[1][0])

    print("Most trustworthy sources (exact / generalized / wrong):")
    for source, phi, n in audited[:5]:
        print(f"  {source:20s}  {phi[0]:.3f} / {phi[1]:.3f} / {phi[2]:.3f}  ({n} claims)")

    print("\n'Generalizers' — honest but vague (high phi2, low phi3):")
    generalizers = sorted(audited, key=lambda row: -row[1][1])[:5]
    for source, phi, n in generalizers:
        print(f"  {source:20s}  {phi[0]:.3f} / {phi[1]:.3f} / {phi[2]:.3f}  ({n} claims)")

    print("\nLeast trustworthy sources (high phi3):")
    unreliable = sorted(audited, key=lambda row: -row[1][2])[:5]
    for source, phi, n in unreliable:
        print(f"  {source:20s}  {phi[0]:.3f} / {phi[1]:.3f} / {phi[2]:.3f}  ({n} claims)")

    # Data cleaning: claims that contradict the inferred truth and come from
    # sources with a high wrong-claim probability are likely extraction errors.
    suspicious = []
    truths = result.truths()
    for record in dataset.iter_records():
        truth = truths[record.object]
        if record.value == truth:
            continue
        if dataset.hierarchy.is_ancestor(record.value, truth):
            continue  # generalized truth, not an error
        phi = result.source_trustworthiness(record.source)
        confidence = result.confidence(record.object)[truth]
        suspicious.append((phi[2] * confidence, record))
    suspicious.sort(key=lambda item: -item[0], reverse=False)
    suspicious.reverse()

    print(f"\n{len(suspicious)} claims conflict with the inferred truths;"
          " top suspected extraction errors:")
    for score, record in suspicious[:5]:
        print(
            f"  score={score:.3f}  {record.source} says "
            f"{record.object} -> {record.value!r} (inferred: {truths[record.object]!r})"
        )


if __name__ == "__main__":
    main()

"""Quickstart: hierarchical truth discovery on the paper's Table-1 example.

Builds the tiny tourist-attraction scenario from the paper's introduction —
conflicting claims about where the Statue of Liberty and Big Ben are — and
shows how TDH uses the hierarchy to keep 'NY' and 'Liberty Island' from
conflicting, while majority voting cannot.

Run:  python examples/quickstart.py
"""

from repro import Hierarchy, Record, TDHModel, TruthDiscoveryDataset, Vote


def build_dataset() -> TruthDiscoveryDataset:
    hierarchy = Hierarchy()
    hierarchy.add_path(["USA", "NY", "Liberty Island"])
    hierarchy.add_path(["USA", "LA"])
    hierarchy.add_path(["UK", "London", "Westminster"])
    hierarchy.add_path(["UK", "Manchester"])

    records = [
        # Table 1 of the paper, plus a couple of extra claims so the sources'
        # reliabilities are estimable.
        Record("Statue of Liberty", "UNESCO", "NY"),
        Record("Statue of Liberty", "Wikipedia", "Liberty Island"),
        Record("Statue of Liberty", "Arrangy", "LA"),
        Record("Big Ben", "Quora", "Manchester"),
        Record("Big Ben", "tripadvisor", "London"),
        Record("Big Ben", "Wikipedia", "Westminster"),
        Record("Big Ben", "UNESCO", "London"),
        Record("Niagara Falls", "UNESCO", "NY"),
        Record("Niagara Falls", "Wikipedia", "NY"),
        Record("Niagara Falls", "Arrangy", "LA"),
    ]
    gold = {
        "Statue of Liberty": "Liberty Island",
        "Big Ben": "Westminster",
        "Niagara Falls": "NY",
    }
    return TruthDiscoveryDataset(hierarchy, records, gold=gold, name="table1")


def main() -> None:
    dataset = build_dataset()
    print("Dataset:", dataset.stats(), "\n")

    tdh = TDHModel().fit(dataset)
    vote = Vote().fit(dataset)

    print(f"{'Object':20s}  {'TDH':15s}  {'VOTE':15s}  gold")
    for obj in dataset.objects:
        print(
            f"{obj:20s}  {str(tdh.truth(obj)):15s}  "
            f"{str(vote.truth(obj)):15s}  {dataset.gold[obj]}"
        )

    print("\nTDH source trustworthiness (exact, generalized, wrong):")
    for source in dataset.sources:
        phi = tdh.source_trustworthiness(source)
        print(f"  {source:12s}  ({phi[0]:.3f}, {phi[1]:.3f}, {phi[2]:.3f})")

    print("\nConfidence distribution for the Statue of Liberty:")
    for value, confidence in sorted(
        tdh.confidence("Statue of Liberty").items(), key=lambda kv: -kv[1]
    ):
        print(f"  {value:15s}  {confidence:.3f}")


if __name__ == "__main__":
    main()

"""Knowledge-fusion scenario: crowdsourced truth discovery end to end.

Reproduces the paper's core workflow (Figure 2) on a synthetic BirthPlaces
dataset: run hierarchical truth inference over noisy web-extracted records,
then spend a crowdsourcing budget with EAI task assignment, and watch the
accuracy climb. Compares against the uncertainty-sampling baseline (ME) with
the same budget.

Run:  python examples/knowledge_fusion.py
"""

from repro import (
    CrowdSimulator,
    EAIAssigner,
    MaxEntropyAssigner,
    TDHModel,
    make_birthplaces,
    make_worker_pool,
)


def main() -> None:
    dataset = make_birthplaces(size=500, seed=7)
    print("Synthetic BirthPlaces:", dataset.stats(), "\n")

    rounds, tasks_per_worker = 12, 5
    workers = make_worker_pool(10, pi_p=0.75, seed=3)
    budget = rounds * tasks_per_worker * len(workers)
    print(f"Crowd budget: {budget} answers "
          f"({rounds} rounds x {len(workers)} workers x {tasks_per_worker} tasks)\n")

    results = {}
    for assigner in (EAIAssigner(), MaxEntropyAssigner()):
        simulator = CrowdSimulator(
            dataset,
            TDHModel(max_iter=30, tol=1e-4),
            assigner,
            workers,
            seed=5,
        )
        history = simulator.run(rounds=rounds, tasks_per_worker=tasks_per_worker)
        results[assigner.name] = history

    print(f"{'Round':>5s}  {'TDH+EAI':>8s}  {'TDH+ME':>8s}")
    eai = results["EAI"].records
    me = results["ME"].records
    for record_eai, record_me in zip(eai, me):
        print(
            f"{record_eai.round:5d}  {record_eai.accuracy:8.4f}  {record_me.accuracy:8.4f}"
        )

    gain_eai = eai[-1].accuracy - eai[0].accuracy
    gain_me = me[-1].accuracy - me[0].accuracy
    print(f"\nAccuracy gained with the same budget: "
          f"EAI +{100 * gain_eai:.1f}pp vs ME +{100 * gain_me:.1f}pp")


if __name__ == "__main__":
    main()

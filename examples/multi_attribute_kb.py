"""Multi-attribute knowledge-base construction.

Knowledge fusion rarely stops at one attribute: a knowledge base stores a
birthplace, a residence, a workplace per entity. This example exercises the
multi-attribute generalization the paper sketches in Section 2.1
(``repro.core.MultiAttributeTruthDiscovery``): one hierarchy, several
attribute claim sets, per-attribute TDH fits, and a fused record per entity —
plus a crowd budget spent on the globally most valuable (attribute, object)
questions.

Run:  python examples/multi_attribute_kb.py
"""

import numpy as np

from repro import Record, TruthDiscoveryDataset
from repro.core import MultiAttributeTruthDiscovery
from repro.datasets import make_geography, sample_truths


def build_attribute(name, hierarchy, objects, rng, n_sources=6, accuracy=0.7):
    """Synthesise one attribute's claims with mixed-quality sources."""
    truths = sample_truths(hierarchy, len(objects), rng, min_depth=2)
    records = []
    nodes = [n for n in hierarchy.non_root_nodes()]
    for obj, truth in zip(objects, truths):
        for s in range(n_sources):
            if rng.random() > 0.6:
                continue
            if rng.random() < accuracy:
                value = truth
            elif rng.random() < 0.5 and hierarchy.ancestors(truth):
                ancestors = hierarchy.ancestors(truth)
                value = ancestors[int(rng.integers(len(ancestors)))]
            else:
                value = nodes[int(rng.integers(len(nodes)))]
            records.append(Record(obj, f"{name}_src_{s}", value))
        if not any(r.object == obj for r in records[-n_sources:]):
            records.append(Record(obj, f"{name}_src_0", truth))
    gold = dict(zip(objects, truths))
    return TruthDiscoveryDataset(hierarchy, records, gold=gold, name=name), gold


def main() -> None:
    rng = np.random.default_rng(42)
    hierarchy = make_geography(height=4, branching=(4, 4, 3, 3), rng=rng)
    people = [f"person_{i}" for i in range(120)]

    datasets = {}
    golds = {}
    for attribute in ("birthplace", "residence", "workplace"):
        datasets[attribute], golds[attribute] = build_attribute(
            attribute, hierarchy, people, rng
        )

    discovery = MultiAttributeTruthDiscovery()
    result = discovery.fit(datasets)

    print("Fused knowledge-base rows (first 5 entities):")
    for person in people[:5]:
        print(f"  {person:12s} {result.record(person)}")

    correct = total = 0
    for attribute, gold in golds.items():
        for obj, truth in gold.items():
            if (attribute, obj) in result.truths():
                total += 1
                correct += result.truth(attribute, obj) == truth
    print(f"\nexact accuracy across all attributes: {correct / total:.3f} ({total} slots)")

    assignment = discovery.assign(datasets, result, ["annotator_0", "annotator_1"], 5)
    print("\nCrowd budget: globally best (attribute, object) questions per annotator:")
    for worker, tasks in assignment.items():
        print(f"  {worker}: {tasks}")


if __name__ == "__main__":
    main()

"""Numeric truth discovery with the implicit significant-digit hierarchy.

Stock attributes (Section 5.8): different websites publish the same quantity
at different precisions ("605.196" vs "605.2" vs "605"), and a few publish
scale errors (missing decimal point). TDH treats round-offs as generalized
truths via the implicit rounding hierarchy and *selects* the best claim, so
outliers cannot drag the estimate — unlike MEAN/CATD averaging.

Run:  python examples/numeric_fusion.py
"""

from repro import Catd, Mean, TDHModel
from repro.datasets import claims_to_dataset, make_stock_claims
from repro.eval import evaluate_numeric
from repro.hierarchy import rounding_chain


def main() -> None:
    print("Rounding chain of 605.196:", rounding_chain(605.196), "\n")

    claims, gold = make_stock_claims("open_price", n_objects=300, seed=23)
    dataset = claims_to_dataset(claims, gold)
    print("Stock open-price dataset:", dataset.stats(), "\n")

    tdh = TDHModel(max_iter=25, tol=1e-4).fit(dataset)
    estimates = {
        "TDH": {obj: float(v) for obj, v in tdh.truths().items()},
        "CATD": Catd().fit(claims),
        "MEAN": Mean().fit(claims),
    }

    print(f"{'Algorithm':10s}  {'MAE':>10s}  {'RelErr':>10s}")
    for name, est in estimates.items():
        report = evaluate_numeric(est, gold)
        print(f"{name:10s}  {report.mae:10.4f}  {report.relative_error:10.4f}")

    # Show one object where an outlier breaks the averagers but not TDH.
    worst = max(
        gold,
        key=lambda obj: abs(estimates["MEAN"][obj] - gold[obj]) / max(abs(gold[obj]), 1e-9),
    )
    print(f"\nObject {worst}: truth={gold[worst]}")
    print("  claims:", sorted(claims[worst].values()))
    for name, est in estimates.items():
        print(f"  {name:5s} estimate: {est[worst]:.4f}")


if __name__ == "__main__":
    main()
